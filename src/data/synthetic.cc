#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"

namespace imdiff {
namespace {

constexpr float kTwoPi = 6.283185307179586f;

}  // namespace

Tensor GenerateCleanSeries(const SyntheticConfig& config, Rng& rng) {
  IMDIFF_CHECK_GT(config.length, 0);
  IMDIFF_CHECK_GT(config.dims, 0);
  IMDIFF_CHECK_GT(config.num_factors, 0);
  const int64_t length = config.length;
  const int64_t k = config.dims;
  const int f = config.num_factors;

  // Latent factors: sum of sinusoids + AR(1) drift, one column per factor.
  std::vector<std::vector<float>> factors(
      static_cast<size_t>(f), std::vector<float>(static_cast<size_t>(length)));
  // Regime boundaries (regime switching changes factor periods/phases).
  std::vector<int64_t> regime_starts = {0};
  for (int r = 1; r < config.num_regimes; ++r) {
    regime_starts.push_back(length * r / config.num_regimes);
  }
  regime_starts.push_back(length);

  for (int fi = 0; fi < f; ++fi) {
    std::vector<float>& col = factors[static_cast<size_t>(fi)];
    for (size_t reg = 0; reg + 1 < regime_starts.size(); ++reg) {
      // Fresh harmonic stack per regime.
      std::vector<float> periods, phases, amps;
      for (int h = 0; h < config.harmonics; ++h) {
        periods.push_back(static_cast<float>(
            rng.Uniform(config.min_period, config.max_period)));
        phases.push_back(static_cast<float>(rng.Uniform(0.0, kTwoPi)));
        amps.push_back(static_cast<float>(rng.Uniform(0.4, 1.0)) /
                       static_cast<float>(h + 1));
      }
      for (int64_t t = regime_starts[reg]; t < regime_starts[reg + 1]; ++t) {
        float v = 0.0f;
        for (int h = 0; h < config.harmonics; ++h) {
          v += amps[static_cast<size_t>(h)] *
               std::sin(kTwoPi * static_cast<float>(t) /
                            periods[static_cast<size_t>(h)] +
                        phases[static_cast<size_t>(h)]);
        }
        col[static_cast<size_t>(t)] = v;
      }
    }
    // AR(1) drift added on top.
    float drift = 0.0f;
    for (int64_t t = 0; t < length; ++t) {
      drift = config.ar_coef * drift +
              static_cast<float>(rng.Normal(0.0, config.ar_sigma));
      col[static_cast<size_t>(t)] += drift;
    }
    // Benign raised-cosine load bumps: smooth, unpredictable onsets.
    if (config.bump_rate > 0.0) {
      for (int64_t t = 0; t < length; ++t) {
        if (!rng.Bernoulli(config.bump_rate)) continue;
        const int64_t len =
            rng.UniformInt(config.bump_min_length, config.bump_max_length);
        const float amp =
            config.bump_amplitude * static_cast<float>(rng.Uniform(0.5, 1.5)) *
            (rng.Bernoulli(0.5) ? 1.0f : -1.0f);
        for (int64_t u = 0; u < len && t + u < length; ++u) {
          const float phase = kTwoPi * static_cast<float>(u) /
                              static_cast<float>(len);
          col[static_cast<size_t>(t + u)] +=
              amp * 0.5f * (1.0f - std::cos(phase));
        }
        t += len;  // no overlapping bumps
      }
    }
  }

  // Channel loadings: each channel mixes the factors, concentrated on one
  // primary factor to create realistic cross-channel correlation structure.
  Tensor out({length, k});
  float* po = out.mutable_data();
  for (int64_t j = 0; j < k; ++j) {
    const int primary = static_cast<int>(j % f);
    std::vector<float> loading(static_cast<size_t>(f));
    for (int fi = 0; fi < f; ++fi) {
      const float base = fi == primary ? config.factor_correlation
                                       : (1.0f - config.factor_correlation) /
                                             static_cast<float>(f);
      loading[static_cast<size_t>(fi)] =
          base * static_cast<float>(rng.Uniform(0.7, 1.3));
      if (rng.Bernoulli(0.5)) {
        loading[static_cast<size_t>(fi)] = -loading[static_cast<size_t>(fi)];
      }
    }
    const float offset = static_cast<float>(rng.Uniform(-0.5, 0.5));
    const float gain = static_cast<float>(rng.Uniform(0.6, 1.4));
    // Benign variability state: slow amplitude wobble (AR(1) gain modulation)
    // and heteroscedastic noise bursts. Both occur in normal data and are
    // never labeled as anomalies.
    float wobble = 0.0f;
    int64_t burst_remaining = 0;
    for (int64_t t = 0; t < length; ++t) {
      float v = offset;
      for (int fi = 0; fi < f; ++fi) {
        v += loading[static_cast<size_t>(fi)] *
             factors[static_cast<size_t>(fi)][static_cast<size_t>(t)];
      }
      wobble = 0.995f * wobble +
               static_cast<float>(rng.Normal(0.0, 0.1 * config.amplitude_wobble));
      if (burst_remaining > 0) {
        --burst_remaining;
      } else if (rng.Bernoulli(config.burst_rate)) {
        burst_remaining = rng.UniformInt(
            std::max<int64_t>(1, config.burst_length / 2),
            config.burst_length * 2);
      }
      const float sigma = burst_remaining > 0
                              ? config.noise_sigma * config.burst_scale
                              : config.noise_sigma;
      v = gain * (1.0f + wobble) * v +
          static_cast<float>(rng.Normal(0.0, sigma));
      po[t * k + j] = v;
    }
  }
  return out;
}

namespace {

// Per-channel scale (std) used to size anomaly magnitudes.
std::vector<float> ChannelStd(const Tensor& series) {
  const int64_t length = series.dim(0);
  const int64_t k = series.dim(1);
  std::vector<float> out(static_cast<size_t>(k), 0.0f);
  const float* p = series.data();
  for (int64_t j = 0; j < k; ++j) {
    double mean = 0.0;
    for (int64_t t = 0; t < length; ++t) mean += p[t * k + j];
    mean /= static_cast<double>(length);
    double var = 0.0;
    for (int64_t t = 0; t < length; ++t) {
      const double d = p[t * k + j] - mean;
      var += d * d;
    }
    out[static_cast<size_t>(j)] =
        static_cast<float>(std::sqrt(var / static_cast<double>(length)) + 1e-6);
  }
  return out;
}

}  // namespace

std::vector<AnomalyEvent> InjectAnomalies(Tensor& series,
                                          const InjectionConfig& config,
                                          Rng& rng) {
  IMDIFF_CHECK_EQ(series.ndim(), 2u);
  IMDIFF_CHECK(!config.types.empty());
  const int64_t length = series.dim(0);
  const int64_t k = series.dim(1);
  const std::vector<float> scales = ChannelStd(series);
  float* p = series.mutable_data();

  const int64_t target_span =
      static_cast<int64_t>(config.anomaly_rate * static_cast<double>(length));
  std::vector<uint8_t> occupied(static_cast<size_t>(length), 0);
  std::vector<AnomalyEvent> events;
  int64_t injected = 0;
  int attempts = 0;
  const int max_attempts = 500;

  while (injected < target_span && attempts < max_attempts) {
    ++attempts;
    AnomalyEvent event;
    event.type = config.types[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(config.types.size()) - 1))];
    const int64_t max_len =
        std::min(config.max_event_length, target_span - injected +
                                               config.min_event_length);
    event.length = event.type == AnomalyType::kSpike
                       ? rng.UniformInt(1, 3)
                       : rng.UniformInt(config.min_event_length,
                                        std::max(config.min_event_length,
                                                 max_len));
    if (event.length >= length) continue;
    event.start = rng.UniformInt(0, length - event.length - 1);
    // Reject overlap (with 5-step guard bands so events stay distinct).
    bool overlap = false;
    const int64_t lo = std::max<int64_t>(0, event.start - 5);
    const int64_t hi = std::min(length, event.start + event.length + 5);
    for (int64_t t = lo; t < hi; ++t) {
      if (occupied[static_cast<size_t>(t)]) {
        overlap = true;
        break;
      }
    }
    if (overlap) continue;

    event.magnitude = static_cast<float>(
        rng.Uniform(config.min_magnitude, config.max_magnitude));
    // Affected channels.
    const int64_t num_channels = std::max<int64_t>(
        1, static_cast<int64_t>(config.channel_fraction * static_cast<double>(k)));
    std::vector<int64_t> all(static_cast<size_t>(k));
    for (int64_t j = 0; j < k; ++j) all[static_cast<size_t>(j)] = j;
    std::shuffle(all.begin(), all.end(), rng.engine());
    event.channels.assign(all.begin(), all.begin() + num_channels);

    // Apply.
    for (int64_t j : event.channels) {
      const float scale = scales[static_cast<size_t>(j)];
      switch (event.type) {
        case AnomalyType::kSpike: {
          const float sign = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
          for (int64_t t = event.start; t < event.start + event.length; ++t) {
            p[t * k + j] += sign * event.magnitude * 3.0f * scale;
          }
          break;
        }
        case AnomalyType::kLevelShift: {
          const float sign = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
          for (int64_t t = event.start; t < event.start + event.length; ++t) {
            p[t * k + j] += sign * event.magnitude * scale;
          }
          break;
        }
        case AnomalyType::kAmplitudeChange: {
          // Mean-preserving scaling around the event-local mean.
          double mean = 0.0;
          for (int64_t t = event.start; t < event.start + event.length; ++t) {
            mean += p[t * k + j];
          }
          mean /= static_cast<double>(event.length);
          const float factor = 1.0f + event.magnitude;
          for (int64_t t = event.start; t < event.start + event.length; ++t) {
            p[t * k + j] = static_cast<float>(mean) +
                           factor * (p[t * k + j] - static_cast<float>(mean));
          }
          break;
        }
        case AnomalyType::kCorrelationBreak: {
          // Replace with an independent random walk: breaks the inter-metric
          // dependency while keeping the marginal scale similar.
          float walk = p[event.start * k + j];
          for (int64_t t = event.start; t < event.start + event.length; ++t) {
            walk += static_cast<float>(rng.Normal(0.0, 0.5 * scale)) *
                    event.magnitude;
            p[t * k + j] = walk;
          }
          break;
        }
        case AnomalyType::kFlatline: {
          const float frozen = p[event.start * k + j];
          for (int64_t t = event.start; t < event.start + event.length; ++t) {
            p[t * k + j] = frozen;
          }
          break;
        }
        case AnomalyType::kTrendDrift: {
          const float sign = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
          for (int64_t t = event.start; t < event.start + event.length; ++t) {
            const float frac = static_cast<float>(t - event.start + 1) /
                               static_cast<float>(event.length);
            p[t * k + j] += sign * event.magnitude * scale * 2.0f * frac;
          }
          break;
        }
      }
    }
    for (int64_t t = event.start; t < event.start + event.length; ++t) {
      occupied[static_cast<size_t>(t)] = 1;
    }
    injected += event.length;
    events.push_back(std::move(event));
  }
  std::sort(events.begin(), events.end(),
            [](const AnomalyEvent& a, const AnomalyEvent& b) {
              return a.start < b.start;
            });
  return events;
}

std::vector<uint8_t> LabelsFromEvents(const std::vector<AnomalyEvent>& events,
                                      int64_t length, int64_t margin) {
  std::vector<uint8_t> labels(static_cast<size_t>(length), 0);
  for (const AnomalyEvent& e : events) {
    IMDIFF_CHECK_LE(e.start + e.length, length);
    const int64_t lo = std::max<int64_t>(0, e.start - margin);
    const int64_t hi = std::min(length, e.start + e.length + margin);
    for (int64_t t = lo; t < hi; ++t) {
      labels[static_cast<size_t>(t)] = 1;
    }
  }
  return labels;
}

}  // namespace imdiff
