#include "data/benchmarks.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"

namespace imdiff {

std::vector<BenchmarkId> AllBenchmarks() {
  return {BenchmarkId::kSmd,  BenchmarkId::kPsm, BenchmarkId::kSwat,
          BenchmarkId::kSmap, BenchmarkId::kMsl, BenchmarkId::kGcp};
}

std::string BenchmarkName(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kSmd:
      return "SMD";
    case BenchmarkId::kPsm:
      return "PSM";
    case BenchmarkId::kSwat:
      return "SWaT";
    case BenchmarkId::kSmap:
      return "SMAP";
    case BenchmarkId::kMsl:
      return "MSL";
    case BenchmarkId::kGcp:
      return "GCP";
  }
  return "?";
}

namespace {

// Profile of one simulated benchmark: generator + injector configuration.
struct BenchmarkProfile {
  SyntheticConfig signal;
  InjectionConfig injection;
  int64_t train_length;
  int64_t test_length;
};

// Published traits each profile encodes (scaled lengths):
//  - SMD: server machines, moderate dims, subtle anomalies (small deviation
//    between normal/abnormal), ~4% anomaly rate, long series.
//  - PSM: eBay server pooled metrics, higher anomaly rate, subtle deviations.
//  - SWaT: 51-dim water-treatment testbed -> highest dims here, multi-regime
//    complex patterns, large training set, ranged actuator attacks.
//  - SMAP: soil-moisture satellite; short sequences, strongly inter-correlated
//    channels, telemetry glitches.
//  - MSL: Mars rover; strong inter-metric structure, correlation-break
//    anomalies dominate.
//  - GCP: cloud-platform service metrics; smooth periodic load curves with
//    spike/level-shift incidents (easiest dataset — all methods score high).
BenchmarkProfile GetProfile(BenchmarkId id) {
  BenchmarkProfile p;
  switch (id) {
    case BenchmarkId::kSmd: {
      p.signal.dims = 8;
      p.signal.num_factors = 3;
      p.signal.harmonics = 2;
      p.signal.noise_sigma = 0.04f;
      p.signal.num_regimes = 1;
      p.train_length = 1600;
      p.test_length = 1600;
      p.injection.anomaly_rate = 0.06;
      p.injection.min_magnitude = 1.0f;  // subtle deviations (smallest here)
      p.injection.max_magnitude = 2.0f;
      p.injection.max_event_length = 48;
      p.injection.types = {AnomalyType::kLevelShift,
                           AnomalyType::kAmplitudeChange, AnomalyType::kSpike,
                           AnomalyType::kTrendDrift};
      break;
    }
    case BenchmarkId::kPsm: {
      p.signal.dims = 8;
      p.signal.num_factors = 3;
      p.signal.harmonics = 3;
      p.signal.noise_sigma = 0.05f;
      p.train_length = 1600;
      p.test_length = 1600;
      p.injection.anomaly_rate = 0.14;
      p.injection.min_magnitude = 1.0f;
      p.injection.max_magnitude = 2.2f;
      p.injection.max_event_length = 64;
      p.injection.types = {AnomalyType::kLevelShift,
                           AnomalyType::kAmplitudeChange,
                           AnomalyType::kCorrelationBreak,
                           AnomalyType::kSpike};
      break;
    }
    case BenchmarkId::kSwat: {
      p.signal.dims = 16;  // scaled from 51 (see DESIGN.md)
      p.signal.num_factors = 5;
      p.signal.harmonics = 3;
      p.signal.noise_sigma = 0.06f;
      p.signal.num_regimes = 3;  // intricate, diverse patterns
      p.signal.ar_sigma = 0.05f;
      p.signal.burst_rate = 0.012;  // most volatile dataset
      p.train_length = 2400;  // expansive training set
      p.test_length = 1600;
      p.injection.anomaly_rate = 0.12;
      p.injection.min_magnitude = 1.2f;
      p.injection.max_magnitude = 2.6f;
      p.injection.min_event_length = 10;
      p.injection.max_event_length = 90;  // long actuator attacks
      p.injection.types = {AnomalyType::kLevelShift, AnomalyType::kFlatline,
                           AnomalyType::kAmplitudeChange,
                           AnomalyType::kTrendDrift};
      break;
    }
    case BenchmarkId::kSmap: {
      p.signal.dims = 8;
      p.signal.num_factors = 2;  // strong inter-channel correlation
      p.signal.harmonics = 2;
      p.signal.noise_sigma = 0.03f;
      p.signal.factor_correlation = 0.9f;
      p.train_length = 900;  // shorter sequences
      p.test_length = 900;
      p.injection.anomaly_rate = 0.12;
      p.injection.min_magnitude = 1.2f;
      p.injection.max_magnitude = 2.4f;
      p.injection.max_event_length = 70;
      p.injection.types = {AnomalyType::kCorrelationBreak,
                           AnomalyType::kLevelShift, AnomalyType::kSpike};
      break;
    }
    case BenchmarkId::kMsl: {
      p.signal.dims = 10;
      p.signal.num_factors = 3;
      p.signal.harmonics = 2;
      p.signal.noise_sigma = 0.035f;
      p.signal.factor_correlation = 0.92f;  // prominent inter-metric structure
      p.train_length = 1200;
      p.test_length = 1200;
      p.injection.anomaly_rate = 0.10;
      p.injection.min_magnitude = 1.1f;
      p.injection.max_magnitude = 2.2f;
      p.injection.max_event_length = 60;
      p.injection.channel_fraction = 0.35;  // localized inter-metric breaks
      p.injection.types = {AnomalyType::kCorrelationBreak,
                           AnomalyType::kFlatline, AnomalyType::kLevelShift};
      break;
    }
    case BenchmarkId::kGcp: {
      p.signal.dims = 6;
      p.signal.num_factors = 2;
      p.signal.harmonics = 2;
      p.signal.noise_sigma = 0.025f;
      p.train_length = 1200;
      p.test_length = 1200;
      p.injection.anomaly_rate = 0.08;
      p.injection.min_magnitude = 1.2f;  // pronounced incidents
      p.injection.max_magnitude = 2.8f;
      p.injection.max_event_length = 50;
      p.injection.types = {AnomalyType::kSpike, AnomalyType::kLevelShift,
                           AnomalyType::kAmplitudeChange};
      break;
    }
  }
  return p;
}

}  // namespace

MtsDataset MakeBenchmarkDataset(BenchmarkId id, uint64_t seed,
                                float size_scale) {
  IMDIFF_CHECK_GT(size_scale, 0.0f);
  BenchmarkProfile profile = GetProfile(id);
  const int64_t train_length = std::max<int64_t>(
      200, static_cast<int64_t>(profile.train_length * size_scale));
  const int64_t test_length = std::max<int64_t>(
      200, static_cast<int64_t>(profile.test_length * size_scale));

  // One generator run spans train+test so the test continues the same
  // underlying process (as in the real benchmarks).
  Rng rng(seed * 1000003ull + static_cast<uint64_t>(id) * 7919ull);
  SyntheticConfig signal = profile.signal;
  signal.length = train_length + test_length;
  Tensor full = GenerateCleanSeries(signal, rng);

  MtsDataset out;
  out.name = BenchmarkName(id);
  {
    const int64_t k = full.dim(1);
    Tensor train({train_length, k});
    Tensor test({test_length, k});
    std::copy_n(full.data(), train_length * k, train.mutable_data());
    std::copy_n(full.data() + train_length * k, test_length * k,
                test.mutable_data());
    out.train = std::move(train);
    out.test = std::move(test);
  }
  std::vector<AnomalyEvent> events =
      InjectAnomalies(out.test, profile.injection, rng);
  out.test_labels = LabelsFromEvents(events, test_length);
  return out;
}

MtsDataset MakeMicroserviceLatencyDataset(uint64_t seed, int64_t num_services,
                                          int64_t train_length,
                                          int64_t test_length) {
  Rng rng(seed * 2654435761ull + 17ull);
  const int64_t total = train_length + test_length;
  // Latency baseline per service, diurnal load curve (period ~ 2880 samples at
  // 30 s would be a day; scaled to the series length), plus bursty noise.
  Tensor full({total, num_services});
  float* p = full.mutable_data();
  const float day_period = static_cast<float>(total) / 3.0f;
  for (int64_t s = 0; s < num_services; ++s) {
    const float base = static_cast<float>(rng.Uniform(20.0, 120.0));  // ms
    const float diurnal_amp = base * static_cast<float>(rng.Uniform(0.2, 0.5));
    const float phase = static_cast<float>(rng.Uniform(0.0, 6.283));
    float burst = 0.0f;
    for (int64_t t = 0; t < total; ++t) {
      // Diurnal load raises latency; bursts decay geometrically.
      const float load =
          std::sin(6.283185f * static_cast<float>(t) / day_period + phase);
      burst *= 0.9f;
      if (rng.Bernoulli(0.01)) {
        burst += static_cast<float>(rng.Uniform(0.05, 0.25)) * base;
      }
      const float jitter =
          static_cast<float>(rng.Normal(0.0, 0.02)) * base;
      p[t * num_services + s] =
          base + diurnal_amp * (0.5f + 0.5f * load) + burst + jitter;
    }
  }
  MtsDataset out;
  out.name = "MicroserviceLatency";
  {
    Tensor train({train_length, num_services});
    Tensor test({test_length, num_services});
    std::copy_n(full.data(), train_length * num_services,
                train.mutable_data());
    std::copy_n(full.data() + train_length * num_services,
                test_length * num_services, test.mutable_data());
    out.train = std::move(train);
    out.test = std::move(test);
  }
  // Incidents: latency regressions (level shifts / drifts) on a subset of
  // services — the events ImDiffusion monitors in production.
  InjectionConfig incidents;
  incidents.anomaly_rate = 0.07;
  incidents.min_event_length = 8;
  incidents.max_event_length = 80;
  incidents.min_magnitude = 1.0f;
  incidents.max_magnitude = 2.5f;
  incidents.channel_fraction = 0.4;
  incidents.types = {AnomalyType::kLevelShift, AnomalyType::kTrendDrift,
                     AnomalyType::kAmplitudeChange};
  std::vector<AnomalyEvent> events = InjectAnomalies(out.test, incidents, rng);
  out.test_labels = LabelsFromEvents(events, test_length);
  return out;
}

}  // namespace imdiff
