#include "data/ugly_stream.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"

namespace imdiff {

namespace {
constexpr float kTwoPi = 6.283185307179586f;

// Per-channel std of the current series, for sizing shift offsets.
std::vector<float> ChannelScale(const Tensor& series) {
  const int64_t length = series.dim(0);
  const int64_t k = series.dim(1);
  std::vector<float> out(static_cast<size_t>(k), 1.0f);
  const float* p = series.data();
  for (int64_t j = 0; j < k; ++j) {
    double mean = 0.0;
    for (int64_t t = 0; t < length; ++t) mean += p[t * k + j];
    mean /= static_cast<double>(length);
    double var = 0.0;
    for (int64_t t = 0; t < length; ++t) {
      const double d = p[t * k + j] - mean;
      var += d * d;
    }
    out[static_cast<size_t>(j)] =
        static_cast<float>(std::sqrt(var / static_cast<double>(length)) + 1e-6);
  }
  return out;
}

}  // namespace

int64_t SampleHeavyTail(Rng& rng, int64_t min_value, double tail,
                        int64_t max_value) {
  IMDIFF_CHECK_GE(min_value, 1);
  IMDIFF_CHECK_GE(max_value, min_value);
  IMDIFF_CHECK_GT(tail, 0.0);
  // Inverse-CDF Pareto: U in (0, 1] to keep the pow finite.
  const double u = 1.0 - rng.Uniform(0.0, 1.0);
  const double len =
      std::ceil(static_cast<double>(min_value) * std::pow(u, -1.0 / tail));
  return std::clamp(static_cast<int64_t>(len), min_value, max_value);
}

UglyStream MakeUglyStream(uint64_t seed, const UglyStreamConfig& config) {
  IMDIFF_CHECK_GT(config.length, 0);
  IMDIFF_CHECK_GT(config.dims, 0);
  IMDIFF_CHECK_GE(config.missing_rate, 0.0);
  IMDIFF_CHECK_LT(config.missing_rate, 1.0);
  IMDIFF_CHECK_GE(config.gap_rate, 0.0);
  const int64_t length = config.length;
  const int64_t k = config.dims;
  Rng rng(MixSeed(seed, 0x75676c79u));  // "ugly"

  SyntheticConfig base = config.base;
  base.length = length;
  base.dims = k;

  UglyStream stream;
  stream.samples = GenerateCleanSeries(base, rng);
  float* p = stream.samples.mutable_data();

  // Dynamics break: from the break point on, replace the series with a
  // realization whose harmonic periods are scaled — a concept-drift event in
  // the dynamics (see header). Draws from `rng` only when enabled, so
  // disabled configs reproduce pre-feature streams bitwise.
  if (config.dynamics_period_scale != 1.0f) {
    IMDIFF_CHECK_GT(config.dynamics_period_scale, 0.0f);
    IMDIFF_CHECK_GE(config.dynamics_break, 0.0);
    IMDIFF_CHECK_LE(config.dynamics_break, 1.0);
    SyntheticConfig shifted = base;
    shifted.min_period *= config.dynamics_period_scale;
    shifted.max_period *= config.dynamics_period_scale;
    const Tensor regime = GenerateCleanSeries(shifted, rng);
    const float* q = regime.data();
    const int64_t start =
        static_cast<int64_t>(config.dynamics_break * static_cast<double>(length));
    for (int64_t t = start; t < length; ++t) {
      for (int64_t j = 0; j < k; ++j) p[t * k + j] = q[t * k + j];
    }
  }

  // Re-base channels into the caller's value band before any distortion, so
  // drift ramps and regime shifts act in the re-based units (see header).
  if (!config.channel_offset.empty() || !config.channel_gain.empty()) {
    IMDIFF_CHECK_EQ(static_cast<int64_t>(config.channel_offset.size()), k);
    IMDIFF_CHECK_EQ(static_cast<int64_t>(config.channel_gain.size()), k);
    for (int64_t t = 0; t < length; ++t) {
      for (int64_t j = 0; j < k; ++j) {
        p[t * k + j] = config.channel_offset[static_cast<size_t>(j)] +
                       config.channel_gain[static_cast<size_t>(j)] *
                           p[t * k + j];
      }
    }
  }

  // Seasonal load envelope: one phase per stream, all channels breathe
  // together (a shared load driver), with a small per-channel depth spread.
  if (config.season_amplitude != 0.0f) {
    const float phase = static_cast<float>(rng.Uniform(0.0, kTwoPi));
    std::vector<float> depth(static_cast<size_t>(k));
    for (int64_t j = 0; j < k; ++j) {
      depth[static_cast<size_t>(j)] =
          config.season_amplitude * static_cast<float>(rng.Uniform(0.7, 1.3));
    }
    for (int64_t t = 0; t < length; ++t) {
      const float s =
          std::sin(kTwoPi * static_cast<float>(t) / config.season_period +
                   phase);
      for (int64_t j = 0; j < k; ++j) {
        p[t * k + j] *= 1.0f + depth[static_cast<size_t>(j)] * s;
      }
    }
  }

  // Slow concept drift: an integrated ramp with jittered increments, applied
  // with a per-channel gain so channels drift coherently but not identically.
  if (config.drift_rate != 0.0f) {
    std::vector<float> gain(static_cast<size_t>(k));
    for (int64_t j = 0; j < k; ++j) {
      gain[static_cast<size_t>(j)] = static_cast<float>(rng.Uniform(0.5, 1.5));
    }
    float drift = 0.0f;
    for (int64_t t = 0; t < length; ++t) {
      drift += config.drift_rate *
               (0.5f + static_cast<float>(rng.Uniform(0.0, 1.0)));
      for (int64_t j = 0; j < k; ++j) {
        p[t * k + j] += gain[static_cast<size_t>(j)] * drift;
      }
    }
  }

  // Abrupt regime shifts: at each shift point every channel jumps to a fresh
  // persistent offset (replacing the previous regime's offsets).
  if (config.shift_rate > 0.0) {
    const std::vector<float> scale = ChannelScale(stream.samples);
    std::vector<float> offset(static_cast<size_t>(k), 0.0f);
    for (int64_t t = 0; t < length; ++t) {
      if (rng.Bernoulli(config.shift_rate)) {
        ++stream.shifts;
        for (int64_t j = 0; j < k; ++j) {
          offset[static_cast<size_t>(j)] = static_cast<float>(
              rng.Normal(0.0, config.shift_scale *
                                  scale[static_cast<size_t>(j)]));
        }
      }
      for (int64_t j = 0; j < k; ++j) {
        p[t * k + j] += offset[static_cast<size_t>(j)];
      }
    }
  }

  // Labeled anomalies go in after the benign distortions, so their magnitude
  // is sized against the distorted series the detector actually sees.
  if (config.anomaly_rate > 0.0) {
    InjectionConfig inject;
    inject.anomaly_rate = config.anomaly_rate;
    stream.events = InjectAnomalies(stream.samples, inject, rng);
    stream.labels = LabelsFromEvents(stream.events, length);
  }

  // Missing data, last: the mask is over the final values. All-channel
  // outage gaps first (heavy-tailed lengths), then element dropouts on what
  // is still observed.
  stream.observed.assign(static_cast<size_t>(length * k), 1);
  if (config.gap_rate > 0.0) {
    for (int64_t t = 0; t < length; ++t) {
      if (!rng.Bernoulli(config.gap_rate)) continue;
      const int64_t len = SampleHeavyTail(rng, config.gap_min_length,
                                          config.gap_tail,
                                          config.gap_max_length);
      ++stream.gaps;
      for (int64_t u = 0; u < len && t + u < length; ++u) {
        for (int64_t j = 0; j < k; ++j) {
          stream.observed[static_cast<size_t>((t + u) * k + j)] = 0;
        }
      }
      t += len;  // gaps do not overlap
    }
  }
  if (config.missing_rate > 0.0) {
    for (int64_t i = 0; i < length * k; ++i) {
      if (stream.observed[static_cast<size_t>(i)] == 0) continue;
      if (rng.Bernoulli(config.missing_rate)) {
        stream.observed[static_cast<size_t>(i)] = 0;
      }
    }
  }
  for (uint8_t o : stream.observed) stream.missing += o ? 0 : 1;
  return stream;
}

}  // namespace imdiff
