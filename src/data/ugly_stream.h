// "Ugly stream" generation: production-shaped traffic layered on top of the
// clean synthetic simulators (data/synthetic.h).
//
// The six benchmark simulators replay the paper's datasets — fully observed,
// regularly sampled, stationary within a regime. Real multi-tenant telemetry
// is none of those things: samples go missing (element dropouts and whole
// outage gaps), the underlying system drifts slowly and occasionally jumps to
// a new operating point, daily/weekly load envelopes modulate every channel,
// and most tenants send short bursts rather than steady streams. This module
// composes those distortions over a GenerateCleanSeries realization, emitting
// the per-element observed mask alongside the values so the detector's
// imputation machinery — not silent zero-filling — handles the missing data.
//
// Everything is a pure function of (seed, config): the same inputs reproduce
// the same samples, mask, and labels bitwise, which is what lets the serving
// load harness (bench/serve_replay) compare whole multi-thousand-tenant runs
// byte for byte.

#ifndef IMDIFF_DATA_UGLY_STREAM_H_
#define IMDIFF_DATA_UGLY_STREAM_H_

#include <cstdint>
#include <vector>

#include "data/synthetic.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace imdiff {

struct UglyStreamConfig {
  int64_t length = 800;
  int64_t dims = 6;
  // Base clean-signal generator; its length/dims are overridden by the
  // fields above.
  SyntheticConfig base;

  // Optional per-channel affine re-basing of the clean series, applied
  // BEFORE the distortions below: x <- offset[j] + gain[j] * x. The generic
  // synthetic base emits roughly unit-scale channels; a serving harness that
  // normalizes tenant traffic with a reference dataset's min-max statistics
  // must place the stream inside that dataset's value band, or every sample
  // clamps to the normalization boundary and the scored content is constant.
  // Empty vectors disable (offset 0, gain 1); otherwise both must have
  // `dims` entries.
  std::vector<float> channel_offset;
  std::vector<float> channel_gain;

  // --- Missing data ---------------------------------------------------
  // Per-element iid dropout probability (a sensor missing one reading).
  double missing_rate = 0.0;
  // Per-step probability that an all-channel outage gap starts (an agent
  // restart or network partition: every channel goes dark together).
  double gap_rate = 0.0;
  int64_t gap_min_length = 2;
  int64_t gap_max_length = 64;
  // Pareto tail index of gap lengths; smaller = heavier tail (rare long
  // outages among many short blips).
  double gap_tail = 1.4;

  // --- Dynamics break ---------------------------------------------------
  // Concept drift in the series' DYNAMICS rather than its level: at
  // `dynamics_break` (fraction of the stream) every harmonic period of the
  // base generator is multiplied by `dynamics_period_scale` and the stream
  // switches to the re-drawn realization. Level shifts and slow ramps are
  // largely invisible to a context-conditioned imputer — the offset rides
  // along in the unmasked context — but a frequency change defeats
  // interpolation itself, which is what makes a model trained on the old
  // dynamics genuinely stale. 1.0 disables (and draws nothing from the rng,
  // so disabled streams are bitwise identical to pre-feature ones).
  float dynamics_period_scale = 1.0f;
  double dynamics_break = 0.5;

  // --- Drift ----------------------------------------------------------
  // Slope of the slow additive concept drift, per step (applied to every
  // channel with a per-channel gain). 0 disables.
  float drift_rate = 0.0f;
  // Per-step probability of an abrupt regime shift: every channel jumps to
  // a fresh persistent offset (a deploy or config change).
  double shift_rate = 0.0;
  // Scale of the per-channel shift offsets, in units of the channel's std.
  float shift_scale = 1.0f;

  // --- Seasonal load envelope ------------------------------------------
  // Multiplicative sinusoidal envelope 1 + A·sin(2πt/period + phase), with a
  // per-stream phase so tenants peak at different times. 0 disables.
  float season_amplitude = 0.0f;
  float season_period = 400.0f;

  // --- Anomalies --------------------------------------------------------
  // Labeled anomaly fraction (InjectAnomalies); 0 emits a clean stream.
  double anomaly_rate = 0.0;
};

struct UglyStream {
  // [L, K] raw values. Ground truth is kept even at unobserved entries —
  // consumers must route `observed` through the detector's masking machinery
  // instead of reading masked values, and tests exploit this: corrupting the
  // masked entries must not change any downstream score.
  Tensor samples;
  // L*K row-major flags, 1 = observed. Empty never occurs (always L*K).
  std::vector<uint8_t> observed;
  // Per-timestamp anomaly labels (empty when anomaly_rate == 0).
  std::vector<uint8_t> labels;
  std::vector<AnomalyEvent> events;

  int64_t missing = 0;  // unobserved elements
  int64_t gaps = 0;     // all-channel outage runs
  int64_t shifts = 0;   // abrupt regime shifts applied
};

// Generates one stream. Pure function of (seed, config).
UglyStream MakeUglyStream(uint64_t seed, const UglyStreamConfig& config);

// Heavy-tailed (Pareto) integer draw: ceil(min · U^(-1/tail)) clamped to
// [min, max]. Shared by the gap-length sampler above and the load
// generator's burst sizes (serve/replay.h) — both want "mostly short, rarely
// very long".
int64_t SampleHeavyTail(Rng& rng, int64_t min_value, double tail,
                        int64_t max_value);

}  // namespace imdiff

#endif  // IMDIFF_DATA_UGLY_STREAM_H_
