#include "data/dataset.h"

#include <algorithm>

#include "utils/check.h"
#include "utils/csv.h"

namespace imdiff {

MinMaxStats FitMinMax(const Tensor& series) {
  IMDIFF_CHECK_EQ(series.ndim(), 2u);
  const int64_t length = series.dim(0);
  const int64_t k = series.dim(1);
  IMDIFF_CHECK_GT(length, 0);
  MinMaxStats stats;
  stats.min.assign(static_cast<size_t>(k), 0.0f);
  stats.max.assign(static_cast<size_t>(k), 0.0f);
  const float* p = series.data();
  for (int64_t j = 0; j < k; ++j) {
    stats.min[j] = stats.max[j] = p[j];
  }
  for (int64_t i = 1; i < length; ++i) {
    const float* row = p + i * k;
    for (int64_t j = 0; j < k; ++j) {
      stats.min[j] = std::min(stats.min[j], row[j]);
      stats.max[j] = std::max(stats.max[j], row[j]);
    }
  }
  return stats;
}

Tensor ApplyMinMax(const Tensor& series, const MinMaxStats& stats) {
  IMDIFF_CHECK_EQ(series.ndim(), 2u);
  const int64_t length = series.dim(0);
  const int64_t k = series.dim(1);
  IMDIFF_CHECK_EQ(static_cast<size_t>(k), stats.min.size());
  Tensor out(series.shape());
  const float* pin = series.data();
  float* pout = out.mutable_data();
  for (int64_t j = 0; j < k; ++j) {
    const float range = stats.max[j] - stats.min[j];
    const float inv = range > 1e-9f ? 1.0f / range : 0.0f;
    for (int64_t i = 0; i < length; ++i) {
      float v = (pin[i * k + j] - stats.min[j]) * inv;
      v = std::clamp(v, -1.0f, 2.0f);
      pout[i * k + j] = v;
    }
  }
  return out;
}

MtsDataset NormalizeDataset(const MtsDataset& dataset) {
  MinMaxStats stats = FitMinMax(dataset.train);
  MtsDataset out;
  out.name = dataset.name;
  out.train = ApplyMinMax(dataset.train, stats);
  out.test = ApplyMinMax(dataset.test, stats);
  out.test_labels = dataset.test_labels;
  return out;
}

namespace {

Tensor RowsToTensor(const std::vector<std::vector<float>>& rows) {
  IMDIFF_CHECK(!rows.empty());
  const int64_t length = static_cast<int64_t>(rows.size());
  const int64_t k = static_cast<int64_t>(rows[0].size());
  Tensor out({length, k});
  float* p = out.mutable_data();
  for (int64_t i = 0; i < length; ++i) {
    IMDIFF_CHECK_EQ(static_cast<int64_t>(rows[i].size()), k)
        << "ragged CSV at row" << i;
    std::copy(rows[i].begin(), rows[i].end(), p + i * k);
  }
  return out;
}

}  // namespace

MtsDataset LoadCsvDataset(const std::string& name,
                          const std::string& train_path,
                          const std::string& test_path,
                          const std::string& labels_path) {
  MtsDataset out;
  out.name = name;
  out.train = RowsToTensor(ReadCsv(train_path, /*skip_header=*/false));
  out.test = RowsToTensor(ReadCsv(test_path, /*skip_header=*/false));
  if (!labels_path.empty()) {
    const auto rows = ReadCsv(labels_path, /*skip_header=*/false);
    out.test_labels.reserve(rows.size());
    for (const auto& row : rows) {
      IMDIFF_CHECK(!row.empty());
      out.test_labels.push_back(row[0] > 0.5f ? 1 : 0);
    }
  } else {
    out.test_labels.assign(static_cast<size_t>(out.test.dim(0)), 0);
  }
  IMDIFF_CHECK_EQ(static_cast<int64_t>(out.test_labels.size()),
                  out.test.dim(0));
  return out;
}

std::vector<AnomalySegment> FindSegments(const std::vector<uint8_t>& labels) {
  std::vector<AnomalySegment> segments;
  int64_t start = -1;
  for (int64_t i = 0; i < static_cast<int64_t>(labels.size()); ++i) {
    if (labels[i] != 0 && start < 0) start = i;
    if (labels[i] == 0 && start >= 0) {
      segments.push_back({start, i});
      start = -1;
    }
  }
  if (start >= 0) {
    segments.push_back({start, static_cast<int64_t>(labels.size())});
  }
  return segments;
}

}  // namespace imdiff
