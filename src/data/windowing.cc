#include "data/windowing.h"

#include <algorithm>

#include "utils/check.h"

namespace imdiff {

std::vector<int64_t> WindowStarts(int64_t length, int64_t window,
                                  int64_t stride) {
  IMDIFF_CHECK_GT(window, 0);
  IMDIFF_CHECK_GT(stride, 0);
  std::vector<int64_t> starts;
  if (length <= window) {
    starts.push_back(0);
    return starts;
  }
  for (int64_t s = 0; s + window <= length; s += stride) starts.push_back(s);
  // Ensure the tail is covered.
  if (starts.back() + window < length) starts.push_back(length - window);
  return starts;
}

Tensor WindowBatch(const Tensor& series, int64_t window, int64_t stride) {
  IMDIFF_CHECK_EQ(series.ndim(), 2u);
  const int64_t length = series.dim(0);
  const int64_t k = series.dim(1);
  const auto starts = WindowStarts(length, window, stride);
  Tensor out({static_cast<int64_t>(starts.size()), window, k});
  float* po = out.mutable_data();
  const float* pin = series.data();
  for (size_t n = 0; n < starts.size(); ++n) {
    float* dst = po + static_cast<int64_t>(n) * window * k;
    if (length >= window) {
      std::copy_n(pin + starts[n] * k, window * k, dst);
    } else {
      // Front-pad short series by repeating the first row.
      const int64_t pad = window - length;
      for (int64_t i = 0; i < pad; ++i) std::copy_n(pin, k, dst + i * k);
      std::copy_n(pin, length * k, dst + pad * k);
    }
  }
  return out;
}

std::vector<float> OverlapAverage(
    const std::vector<std::vector<float>>& window_scores,
    const std::vector<int64_t>& starts, int64_t length, int64_t window) {
  IMDIFF_CHECK_EQ(window_scores.size(), starts.size());
  std::vector<float> sum(static_cast<size_t>(length), 0.0f);
  std::vector<int> count(static_cast<size_t>(length), 0);
  for (size_t n = 0; n < starts.size(); ++n) {
    IMDIFF_CHECK_EQ(static_cast<int64_t>(window_scores[n].size()), window);
    for (int64_t i = 0; i < window; ++i) {
      const int64_t pos = std::min(starts[n] + i, length - 1);
      sum[static_cast<size_t>(pos)] += window_scores[n][static_cast<size_t>(i)];
      ++count[static_cast<size_t>(pos)];
    }
  }
  for (int64_t i = 0; i < length; ++i) {
    if (count[static_cast<size_t>(i)] > 0) {
      sum[static_cast<size_t>(i)] /= static_cast<float>(count[static_cast<size_t>(i)]);
    }
  }
  return sum;
}

}  // namespace imdiff
