// Sliding-window extraction for window-based detectors.

#ifndef IMDIFF_DATA_WINDOWING_H_
#define IMDIFF_DATA_WINDOWING_H_

#include <vector>

#include "tensor/tensor.h"

namespace imdiff {

// Stacks sliding windows of a [L, K] series into [N, W, K] with the given
// stride. If L < W the series is front-padded by repeating the first row.
// The final window is aligned to the series end so the tail is always covered.
Tensor WindowBatch(const Tensor& series, int64_t window, int64_t stride);

// Start offsets of the windows produced by WindowBatch (same N).
std::vector<int64_t> WindowStarts(int64_t length, int64_t window,
                                  int64_t stride);

// Scatters per-window per-timestep scores [N, W] back onto a length-L series,
// averaging where windows overlap.
std::vector<float> OverlapAverage(const std::vector<std::vector<float>>& window_scores,
                                  const std::vector<int64_t>& starts,
                                  int64_t length, int64_t window);

}  // namespace imdiff

#endif  // IMDIFF_DATA_WINDOWING_H_
