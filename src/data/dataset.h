// Multivariate time-series dataset containers and normalization.

#ifndef IMDIFF_DATA_DATASET_H_
#define IMDIFF_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace imdiff {

// A train/test split of one multivariate time series. `train` is assumed
// anomaly-free (the usual self-supervised setting); `test_labels[l]` is 1 when
// timestamp l of `test` is anomalous.
struct MtsDataset {
  std::string name;
  Tensor train;                      // [L_train, K]
  Tensor test;                       // [L_test, K]
  std::vector<uint8_t> test_labels;  // size L_test

  int64_t num_features() const { return train.dim(1); }
  int64_t train_length() const { return train.dim(0); }
  int64_t test_length() const { return test.dim(0); }
};

// Per-channel min-max statistics.
struct MinMaxStats {
  std::vector<float> min;
  std::vector<float> max;
};

// Fits per-channel min/max on a [L, K] series.
MinMaxStats FitMinMax(const Tensor& series);

// Maps each channel to [0, 1] using `stats`, clamping to [-1, 2] so that
// unseen extreme test values stay bounded (standard practice in this
// benchmark family). Constant channels map to 0.
Tensor ApplyMinMax(const Tensor& series, const MinMaxStats& stats);

// Normalizes train and test with statistics fit on train only.
MtsDataset NormalizeDataset(const MtsDataset& dataset);

// Loads a dataset from CSV files: train/test are numeric [L, K] tables and
// labels a single 0/1 column. Pass an empty labels path for an all-normal
// test segment.
MtsDataset LoadCsvDataset(const std::string& name,
                          const std::string& train_path,
                          const std::string& test_path,
                          const std::string& labels_path);

// Contiguous anomalous segments [start, end) in a label vector.
struct AnomalySegment {
  int64_t start;
  int64_t end;
};
std::vector<AnomalySegment> FindSegments(const std::vector<uint8_t>& labels);

}  // namespace imdiff

#endif  // IMDIFF_DATA_DATASET_H_
