// Synthetic multivariate time-series generation and anomaly injection.
//
// The generator produces correlated multivariate series from a small set of
// shared latent factors (periodic + autoregressive), which is the structure
// the six public benchmarks exhibit: channels are noisy mixtures of a few
// underlying system behaviours. Anomalies are injected into copies of the
// clean series with per-event type, span, and affected channels.

#ifndef IMDIFF_DATA_SYNTHETIC_H_
#define IMDIFF_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "utils/rng.h"

namespace imdiff {

// Configuration of the clean-signal generator.
struct SyntheticConfig {
  int64_t length = 2000;
  int64_t dims = 8;          // K channels
  int num_factors = 3;       // shared latent factors
  int harmonics = 2;         // sinusoids per factor
  float min_period = 24.0f;  // shortest base period (timesteps)
  float max_period = 200.0f;
  float ar_coef = 0.85f;     // AR(1) latent drift strength
  float ar_sigma = 0.03f;    // AR(1) innovation scale
  float noise_sigma = 0.03f; // per-channel observation noise
  float factor_correlation = 0.8f;  // channel loading concentration
  int num_regimes = 1;       // >1 adds regime switching (SWaT-like complexity)
  // Benign variability (present in train AND test, never labeled):
  // heteroscedastic noise bursts and slow amplitude wobble. These mimic the
  // stochastic variability of production series that triggers false alarms in
  // single-signal detectors (paper §1).
  double burst_rate = 0.008;   // per-step probability of starting a burst
  float burst_scale = 2.5f;    // noise multiplier during a burst
  int64_t burst_length = 8;    // mean burst duration
  float amplitude_wobble = 0.25f;  // slow AR(1) gain modulation strength
  // Benign smooth "load bumps" on the latent factors: raised-cosine bumps
  // with random onset, amplitude, and duration. They are unpredictable from
  // history (punishing forecasting) yet easy to interpolate from both-sided
  // context (favouring imputation) — the production-variability trait the
  // paper's §1 motivates.
  double bump_rate = 0.006;    // per-step probability of a bump starting
  float bump_amplitude = 0.8f; // peak scale (× U(0.5, 1.5))
  int64_t bump_min_length = 15;
  int64_t bump_max_length = 50;
};

// Anomaly styles matching the taxonomy seen across the benchmarks.
enum class AnomalyType {
  kSpike,             // short large-amplitude point outliers
  kLevelShift,        // ranged additive offset
  kAmplitudeChange,   // ranged multiplicative scaling
  kCorrelationBreak,  // affected channels decouple from the latent factors
  kFlatline,          // sensor freeze (constant value)
  kTrendDrift,        // slow linear drift over the range
};

struct AnomalyEvent {
  int64_t start = 0;
  int64_t length = 0;
  AnomalyType type = AnomalyType::kLevelShift;
  float magnitude = 1.0f;
  std::vector<int64_t> channels;  // affected channel indices
};

// Parameters of the anomaly injector.
struct InjectionConfig {
  double anomaly_rate = 0.08;   // target fraction of anomalous timestamps
  int64_t min_event_length = 6;
  int64_t max_event_length = 60;
  float min_magnitude = 0.8f;
  float max_magnitude = 2.5f;
  // Fraction of channels affected per event (at least one).
  double channel_fraction = 0.5;
  std::vector<AnomalyType> types = {
      AnomalyType::kSpike, AnomalyType::kLevelShift,
      AnomalyType::kAmplitudeChange, AnomalyType::kCorrelationBreak};
};

// Generates a clean [length, dims] series.
Tensor GenerateCleanSeries(const SyntheticConfig& config, Rng& rng);

// Injects anomalies in place and returns the event list. Events never
// overlap; the total anomalous span approximates anomaly_rate * length.
std::vector<AnomalyEvent> InjectAnomalies(Tensor& series,
                                          const InjectionConfig& config,
                                          Rng& rng);

// Expands events into a per-timestamp 0/1 label vector. `margin` extends each
// event's label by that many steps on both sides, absorbing the transition
// effects an injected event has on its immediate neighbourhood (real
// benchmark labels include such onset regions).
std::vector<uint8_t> LabelsFromEvents(const std::vector<AnomalyEvent>& events,
                                      int64_t length, int64_t margin = 3);

}  // namespace imdiff

#endif  // IMDIFF_DATA_SYNTHETIC_H_
