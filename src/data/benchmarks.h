// Simulated equivalents of the six public benchmarks used by the paper
// (SMD, PSM, SWaT, SMAP, MSL, GCP), plus the microservice-latency stream used
// for the production evaluation (Table 7).
//
// The originals are not redistributable/available offline; these simulators
// reproduce each dataset's published traits — dimensionality ratio,
// train/test ratio, anomaly rate, anomaly style, pattern complexity — scaled
// down so that the full table benches run on one CPU core. See DESIGN.md §1
// for the substitution rationale.

#ifndef IMDIFF_DATA_BENCHMARKS_H_
#define IMDIFF_DATA_BENCHMARKS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace imdiff {

enum class BenchmarkId { kSmd, kPsm, kSwat, kSmap, kMsl, kGcp };

// All six benchmarks in the paper's Table 2 column order
// (SMD, PSM, SWaT, SMAP, MSL, GCP).
std::vector<BenchmarkId> AllBenchmarks();

std::string BenchmarkName(BenchmarkId id);

// Relative size multiplier applied to every benchmark's train/test length.
// 1.0 reproduces the default (CPU-scaled) sizes; smaller values give faster
// smoke runs.
MtsDataset MakeBenchmarkDataset(BenchmarkId id, uint64_t seed,
                                float size_scale = 1.0f);

// Simulated email-delivery microservice latency stream (Table 7): a
// 1-channel-per-service MTS with daily periodicity, load bursts, and
// incident-shaped latency regressions.
MtsDataset MakeMicroserviceLatencyDataset(uint64_t seed, int64_t num_services = 6,
                                          int64_t train_length = 1600,
                                          int64_t test_length = 1600);

}  // namespace imdiff

#endif  // IMDIFF_DATA_BENCHMARKS_H_
