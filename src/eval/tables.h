// Fixed-width table printing for the bench binaries, matching the paper's
// table layouts.

#ifndef IMDIFF_EVAL_TABLES_H_
#define IMDIFF_EVAL_TABLES_H_

#include <string>
#include <vector>

namespace imdiff {

// A simple left-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Renders with column padding and a header rule.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision ("0.9284").
std::string FormatMetric(double value, int precision = 4);
// "104 ± 14" style mean±std rendering.
std::string FormatMeanStd(double mean, double std_dev, int precision = 0);

}  // namespace imdiff

#endif  // IMDIFF_EVAL_TABLES_H_
