#include "eval/tables.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "utils/check.h"

namespace imdiff {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  IMDIFF_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string FormatMetric(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string FormatMeanStd(double mean, double std_dev, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << mean << " +- "
      << std_dev;
  return out.str();
}

}  // namespace imdiff
