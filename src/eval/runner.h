// Evaluation harness: builds detectors by name, runs (detector × dataset ×
// seed) evaluations with the paper's protocol, and aggregates metrics.
//
// Protocol (matching §5.1-§5.2): datasets are min-max normalized on train
// statistics; every detector is fit on the anomaly-free train split and
// scored on the test split; the operating threshold is chosen by grid search
// for best point-adjusted F1 (the paper's fallback protocol for baselines and
// the analogue of its per-dataset tuned thresholds); R-AUC-PR/ROC are
// threshold-independent; ADD uses the best-F1 predictions. Each configuration
// is run `num_seeds` times with different detector seeds on a fixed dataset
// realization, as in the paper's 6 independent runs.

#ifndef IMDIFF_EVAL_RUNNER_H_
#define IMDIFF_EVAL_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "data/benchmarks.h"

namespace imdiff {

// Scales every model/training knob for the environment:
//  kFast — single-core CPU profile used by the bench binaries (documented in
//          EXPERIMENTS.md);
//  kPaper — Table 1 hyperparameters (slow on CPU; provided for completeness).
enum class SpeedProfile { kFast, kPaper };

// The ten baselines of Table 2, in the paper's row order, plus "ImDiffusion".
std::vector<std::string> Table2DetectorNames();

// Ablation variants of Tables 5/6, in the paper's row order
// ("ImDiffusion", "Forecasting", "Reconstruction", "Non-ensemble",
//  "Conditional", "Random Mask", "w/o spatial", "w/o temporal").
std::vector<std::string> AblationDetectorNames();

// Builds a detector by (table row) name. Aborts on unknown names.
std::unique_ptr<AnomalyDetector> MakeDetector(const std::string& name,
                                              uint64_t seed,
                                              SpeedProfile profile);

// Metrics of a single run.
struct RunMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double r_auc_pr = 0.0;
  double r_auc_roc = 0.0;
  double add = 0.0;
  double fit_seconds = 0.0;
  double score_seconds = 0.0;
  double points_per_second = 0.0;  // inference throughput
};

// Fits `detector` on the dataset's train split and evaluates on test.
// The dataset must NOT be pre-normalized (normalization happens inside, on
// train statistics).
RunMetrics EvaluateDetector(AnomalyDetector& detector,
                            const MtsDataset& dataset);

// Mean and standard deviation per metric over seeds.
struct AggregateMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double f1_std = 0.0;
  double r_auc_pr = 0.0;
  double add = 0.0;
  double add_std = 0.0;
  double points_per_second = 0.0;
  int num_runs = 0;
};

// Runs `num_seeds` independent detector seeds on one dataset realization.
AggregateMetrics EvaluateManySeeds(const std::string& detector_name,
                                   const MtsDataset& dataset, int num_seeds,
                                   SpeedProfile profile);

// Averages aggregates across datasets (for the Table 3 / Table 6 rows).
AggregateMetrics AverageAggregates(const std::vector<AggregateMetrics>& rows);

// Shared bench-harness options parsed from argv: --seeds N --scale F --paper
// --metrics-out PATH.
struct HarnessOptions {
  int num_seeds = 2;
  float size_scale = 0.5f;
  SpeedProfile profile = SpeedProfile::kFast;
  uint64_t dataset_seed = 42;
  // When non-empty, the bench main dumps the metrics registry (counters,
  // gauges, per-phase latency histograms — see utils/metrics.h) to this path
  // as JSON on exit via WriteMetricsIfRequested, producing the machine-
  // readable perf snapshot the BENCH_*.json trajectory is built from.
  std::string metrics_out;
};
HarnessOptions ParseHarnessOptions(int argc, char** argv);

// Writes the metrics registry to options.metrics_out (no-op when empty).
// Every bench main calls this after its tables are printed.
void WriteMetricsIfRequested(const HarnessOptions& options);

}  // namespace imdiff

#endif  // IMDIFF_EVAL_RUNNER_H_
