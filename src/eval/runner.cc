#include "eval/runner.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "baselines/beatgan.h"
#include "baselines/gdn.h"
#include "baselines/iforest.h"
#include "baselines/interfusion.h"
#include "baselines/lstm_ad.h"
#include "baselines/madgan.h"
#include "baselines/mscred.h"
#include "baselines/mtad_gat.h"
#include "baselines/omni_anomaly.h"
#include "baselines/tranad.h"
#include "core/imdiffusion.h"
#include "metrics/add.h"
#include "metrics/classification.h"
#include "metrics/range_auc.h"
#include "utils/logging.h"
#include "utils/metrics.h"
#include "utils/stopwatch.h"
#include "utils/thread_pool.h"

namespace imdiff {

std::vector<std::string> Table2DetectorNames() {
  return {"IForest",     "BeatGAN",  "LSTM-AD", "InterFusion",
          "OmniAnomaly", "GDN",      "MAD-GAN", "MTAD-GAT",
          "MSCRED",      "TranAD",   "ImDiffusion"};
}

std::vector<std::string> AblationDetectorNames() {
  return {"ImDiffusion",  "Forecasting",  "Reconstruction",
          "Non-ensemble", "Conditional",  "Random Mask",
          "w/o spatial transformer",      "w/o temporal transformer"};
}

namespace {

ImDiffusionConfig BaseImDiffusionConfig(uint64_t seed, SpeedProfile profile) {
  ImDiffusionConfig config = profile == SpeedProfile::kPaper
                                 ? PaperImDiffusionConfig()
                                 : FastImDiffusionConfig();
  config.seed = seed;
  return config;
}

}  // namespace

std::unique_ptr<AnomalyDetector> MakeDetector(const std::string& name,
                                              uint64_t seed,
                                              SpeedProfile profile) {
  const bool paper = profile == SpeedProfile::kPaper;
  if (name == "IForest") {
    IsolationForestConfig config;
    config.num_trees = paper ? 200 : 100;
    config.seed = seed;
    return std::make_unique<IsolationForest>(config);
  }
  if (name == "BeatGAN") {
    BeatGanConfig config;
    if (paper) config.epochs = 30;
    config.seed = seed;
    return std::make_unique<BeatGanDetector>(config);
  }
  if (name == "LSTM-AD") {
    LstmAdConfig config;
    if (paper) {
      config.hidden = 64;
      config.epochs = 20;
    }
    config.seed = seed;
    return std::make_unique<LstmAdDetector>(config);
  }
  if (name == "InterFusion") {
    InterFusionConfig config;
    if (paper) config.epochs = 30;
    config.seed = seed;
    return std::make_unique<InterFusionDetector>(config);
  }
  if (name == "OmniAnomaly") {
    OmniAnomalyConfig config;
    if (paper) config.epochs = 30;
    config.seed = seed;
    return std::make_unique<OmniAnomalyDetector>(config);
  }
  if (name == "GDN") {
    GdnConfig config;
    if (paper) config.epochs = 30;
    config.seed = seed;
    return std::make_unique<GdnDetector>(config);
  }
  if (name == "MAD-GAN") {
    MadGanConfig config;
    if (paper) config.epochs = 30;
    config.seed = seed;
    return std::make_unique<MadGanDetector>(config);
  }
  if (name == "MTAD-GAT") {
    MtadGatConfig config;
    if (paper) config.epochs = 20;
    config.seed = seed;
    return std::make_unique<MtadGatDetector>(config);
  }
  if (name == "MSCRED") {
    MscredConfig config;
    if (paper) config.epochs = 30;
    config.seed = seed;
    return std::make_unique<MscredDetector>(config);
  }
  if (name == "TranAD") {
    TranAdConfig config;
    if (paper) config.epochs = 20;
    config.seed = seed;
    return std::make_unique<TranAdDetector>(config);
  }
  // ImDiffusion and its ablation variants.
  ImDiffusionConfig config = BaseImDiffusionConfig(seed, profile);
  if (name == "ImDiffusion") {
    return std::make_unique<ImDiffusionDetector>(config);
  }
  if (name == "Forecasting") {
    config.mask_strategy = MaskStrategy::kForecasting;
    return std::make_unique<ImDiffusionDetector>(config);
  }
  if (name == "Reconstruction") {
    config.mask_strategy = MaskStrategy::kReconstruction;
    return std::make_unique<ImDiffusionDetector>(config);
  }
  if (name == "Non-ensemble") {
    config.ensemble = false;
    return std::make_unique<ImDiffusionDetector>(config);
  }
  if (name == "Conditional") {
    config.conditional = true;
    return std::make_unique<ImDiffusionDetector>(config);
  }
  if (name == "Random Mask") {
    config.mask_strategy = MaskStrategy::kRandom;
    return std::make_unique<ImDiffusionDetector>(config);
  }
  if (name == "w/o spatial transformer") {
    config.model.use_spatial = false;
    return std::make_unique<ImDiffusionDetector>(config);
  }
  if (name == "w/o temporal transformer") {
    config.model.use_temporal = false;
    return std::make_unique<ImDiffusionDetector>(config);
  }
  IMDIFF_CHECK(false) << "unknown detector" << name;
  return nullptr;
}

RunMetrics EvaluateDetector(AnomalyDetector& detector,
                            const MtsDataset& dataset) {
  const MtsDataset normalized = NormalizeDataset(dataset);
  RunMetrics metrics;
  Stopwatch fit_timer;
  detector.Fit(normalized.train);
  metrics.fit_seconds = fit_timer.ElapsedSeconds();

  Stopwatch score_timer;
  const DetectionResult result = detector.Run(normalized.test);
  metrics.score_seconds = score_timer.ElapsedSeconds();
  metrics.points_per_second =
      metrics.score_seconds > 0.0
          ? static_cast<double>(normalized.test_length()) / metrics.score_seconds
          : 0.0;

  // Per-(detector, dataset) wall clock for the perf trajectory. Dynamic
  // names are fine here: one registry lookup per evaluation run.
  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    const std::string run_key =
        detector.name() + "." +
        (dataset.name.empty() ? std::string("unnamed") : dataset.name);
    registry.GetHistogram("eval.fit_seconds." + run_key)
        ->Record(metrics.fit_seconds);
    registry.GetHistogram("eval.score_seconds." + run_key)
        ->Record(metrics.score_seconds);
    registry.GetCounter("eval.runs")->Increment();
  }

  BinaryMetrics best;
  const float threshold =
      BestF1Threshold(result.scores, normalized.test_labels, 64, &best);
  metrics.precision = best.precision;
  metrics.recall = best.recall;
  metrics.f1 = best.f1;
  metrics.r_auc_pr = RangeAucPr(result.scores, normalized.test_labels);
  metrics.r_auc_roc = RangeAucRoc(result.scores, normalized.test_labels);
  // ADD from the best-F1 predictions (point-adjusted predictions would
  // trivially zero the delay, so the raw thresholded predictions are used).
  metrics.add = AverageDetectionDelay(
      normalized.test_labels, ThresholdScores(result.scores, threshold));
  return metrics;
}

AggregateMetrics EvaluateManySeeds(const std::string& detector_name,
                                   const MtsDataset& dataset, int num_seeds,
                                   SpeedProfile profile) {
  IMDIFF_CHECK_GE(num_seeds, 1) << "EvaluateManySeeds needs num_seeds >= 1";
  // Seed runs are independent: each task builds its own detector (which owns
  // its Rng, seeded from the task's seed index) and writes its own slot, so
  // the aggregate is identical to the serial loop for any thread count.
  std::vector<RunMetrics> runs(static_cast<size_t>(num_seeds));
  ParallelFor(ComputePool(), static_cast<size_t>(num_seeds), [&](size_t s) {
    auto detector = MakeDetector(detector_name,
                                 1000 + 17 * static_cast<uint64_t>(s), profile);
    runs[s] = EvaluateDetector(*detector, dataset);
  });
  AggregateMetrics agg;
  agg.num_runs = num_seeds;
  for (const RunMetrics& r : runs) {
    agg.precision += r.precision;
    agg.recall += r.recall;
    agg.f1 += r.f1;
    agg.r_auc_pr += r.r_auc_pr;
    agg.add += r.add;
    agg.points_per_second += r.points_per_second;
  }
  const double n = static_cast<double>(num_seeds);
  agg.precision /= n;
  agg.recall /= n;
  agg.f1 /= n;
  agg.r_auc_pr /= n;
  agg.add /= n;
  agg.points_per_second /= n;
  double f1_var = 0.0, add_var = 0.0;
  for (const RunMetrics& r : runs) {
    f1_var += (r.f1 - agg.f1) * (r.f1 - agg.f1);
    add_var += (r.add - agg.add) * (r.add - agg.add);
  }
  if (num_seeds > 1) {
    agg.f1_std = std::sqrt(f1_var / (n - 1.0));
    agg.add_std = std::sqrt(add_var / (n - 1.0));
  }
  return agg;
}

AggregateMetrics AverageAggregates(const std::vector<AggregateMetrics>& rows) {
  AggregateMetrics avg;
  if (rows.empty()) return avg;
  for (const AggregateMetrics& r : rows) {
    avg.precision += r.precision;
    avg.recall += r.recall;
    avg.f1 += r.f1;
    avg.f1_std += r.f1_std;
    avg.r_auc_pr += r.r_auc_pr;
    avg.add += r.add;
    avg.add_std += r.add_std;
    avg.points_per_second += r.points_per_second;
    avg.num_runs = r.num_runs;
  }
  const double n = static_cast<double>(rows.size());
  avg.precision /= n;
  avg.recall /= n;
  avg.f1 /= n;
  avg.f1_std /= n;
  avg.r_auc_pr /= n;
  avg.add /= n;
  avg.add_std /= n;
  avg.points_per_second /= n;
  return avg;
}

HarnessOptions ParseHarnessOptions(int argc, char** argv) {
  HarnessOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      options.num_seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      options.size_scale = static_cast<float>(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "--paper") == 0) {
      options.profile = SpeedProfile::kPaper;
    } else if (std::strcmp(argv[i], "--dataset-seed") == 0 && i + 1 < argc) {
      options.dataset_seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      options.metrics_out = argv[++i];
    }
  }
  // Non-positive values would divide by zero downstream (EvaluateManySeeds
  // averages over num_seeds; the simulators scale lengths by size_scale) and
  // fill the tables with NaN, so fail fast with a clear message.
  IMDIFF_CHECK_GE(options.num_seeds, 1)
      << "--seeds must be a positive integer";
  IMDIFF_CHECK(options.size_scale > 0.0f)
      << "--scale must be a positive number";
  return options;
}

void WriteMetricsIfRequested(const HarnessOptions& options) {
  if (options.metrics_out.empty()) return;
  if (WriteMetricsJson(options.metrics_out)) {
    IMDIFF_LOG(Info) << "metrics snapshot written to " << options.metrics_out;
  } else {
    IMDIFF_LOG(Error) << "failed to write metrics snapshot to "
                      << options.metrics_out;
  }
}

}  // namespace imdiff
