#include "serve/refresh.h"

#include <algorithm>
#include <utility>

#include "serve/server.h"
#include "utils/check.h"
#include "utils/fault.h"
#include "utils/logging.h"
#include "utils/metrics.h"
#include "utils/rng.h"

namespace imdiff {
namespace serve {

const char* RefreshTrainer::KindName(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kFitSkipped:
      return "fit_skipped";
    case Event::Kind::kFitFailed:
      return "fit_failed";
    case Event::Kind::kShadowStaged:
      return "shadow_staged";
    case Event::Kind::kShadowAborted:
      return "shadow_aborted";
    case Event::Kind::kPromoted:
      return "promoted";
    case Event::Kind::kPromoteFailed:
      return "promote_failed";
    case Event::Kind::kRolledBack:
      return "rolled_back";
  }
  return "unknown";
}

RefreshTrainer::RefreshTrainer(StreamServer* server,
                               const RefreshOptions& options)
    : server_(server),
      options_(options),
      live_sketch_(options.sketch_epsilon),
      shadow_sketch_(options.sketch_epsilon) {
  IMDIFF_CHECK(server_ != nullptr);
  IMDIFF_CHECK(options_.registry != nullptr)
      << "refresh needs the model registry";
  IMDIFF_CHECK(!options_.model_name.empty());
  IMDIFF_CHECK_GT(options_.shadow_fraction, 0.0);
  IMDIFF_CHECK_GT(options_.verdict_pairs, 0);
  trainer_ = std::thread(&RefreshTrainer::TrainerLoop, this);
}

RefreshTrainer::~RefreshTrainer() { Shutdown(); }

void RefreshTrainer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(fit_mu_);
    if (fit_stop_) return;
    fit_stop_ = true;
  }
  fit_cv_.notify_all();
  if (trainer_.joinable()) trainer_.join();
}

void RefreshTrainer::OnSample() {
  int64_t ordinal = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++samples_;
    if (options_.refresh_every <= 0) return;
    if (samples_ % options_.refresh_every != 0) return;
    // A shadow still resolving means this cadence tick is skipped, not
    // queued: the loop refits from fresher data on the next tick instead.
    if (state_ != State::kIdle) return;
    ordinal = ++fit_ordinal_;
    // Occupy the state machine for the fit's duration so a concurrent
    // worker's tick cannot start a second fit.
    state_ = State::kResolving;
  }
  RunFitAttempt(ordinal);
}

int64_t RefreshTrainer::LiveVersionLocked() const {
  return options_.registry->latest_version(options_.model_name);
}

void RefreshTrainer::AppendEventLocked(Event event) {
  events_.push_back(event);
}

void RefreshTrainer::RunFitAttempt(int64_t ordinal) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const std::shared_ptr<const ModelEntry> live = server_->sessions().model();
  const int64_t window = live->detector->config().model.window;
  const int64_t need = std::max(window, options_.min_window);

  // Only tenants whose retained snippet can yield at least one full training
  // window participate: a training window must never span the artificial
  // discontinuity between two tenants' streams.
  std::vector<Tensor> segments;
  int64_t rows = 0;
  if (server_->sessions().CollectRefreshSegments(window, &segments)) {
    for (const Tensor& seg : segments) rows += seg.dim(0);
  }
  if (rows < need) {
    metrics.GetCounter("refresh.window_short")->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    state_ = State::kIdle;
    Event event;
    event.kind = Event::Kind::kFitSkipped;
    event.fit_ordinal = ordinal;
    event.at_sample = samples_;
    event.live_version = LiveVersionLocked();
    AppendEventLocked(event);
    return;
  }

  FitResult result = FitOnTrainerThread(std::move(segments), ordinal);
  if (!result.ok) {
    // Failed fit: keep serving the live version; the sample window lives in
    // the sessions and is retained for the next cadence tick.
    metrics.GetCounter("refresh.fit_failures")->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    state_ = State::kIdle;
    Event event;
    event.kind = Event::Kind::kFitFailed;
    event.fit_ordinal = ordinal;
    event.at_sample = samples_;
    event.live_version = LiveVersionLocked();
    AppendEventLocked(event);
    return;
  }

  const int64_t shadow_version = options_.registry->PublishShadow(
      options_.model_name, result.detector, result.stats);
  metrics.GetCounter("refresh.fits")->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  shadow_model_ = options_.registry->AcquireShadow(options_.model_name);
  IMDIFF_CHECK(shadow_model_ != nullptr);
  pairs_.clear();
  pairs_done_ = 0;
  live_sketch_.Reset();
  shadow_sketch_.Reset();
  agreement_.Reset();
  state_ = State::kShadowing;
  Event event;
  event.kind = Event::Kind::kShadowStaged;
  event.fit_ordinal = ordinal;
  event.at_sample = samples_;
  event.live_version = LiveVersionLocked();
  event.shadow_version = shadow_version;
  AppendEventLocked(event);
}

RefreshTrainer::FitResult RefreshTrainer::FitOnTrainerThread(
    std::vector<Tensor> segments, int64_t ordinal) {
  std::unique_lock<std::mutex> lock(fit_mu_);
  fit_segments_ = std::move(segments);
  fit_job_ordinal_ = ordinal;
  fit_pending_ = true;
  fit_done_ = false;
  fit_cv_.notify_all();
  // Join the fit: the refresh loop's decisions stay a pure function of the
  // stream because the ingest worker observes the fit's completion at the
  // cadence tick, never at a wall-clock-dependent point.
  fit_cv_.wait(lock, [this] { return fit_done_; });
  return std::move(fit_result_);
}

void RefreshTrainer::TrainerLoop() {
  std::unique_lock<std::mutex> lock(fit_mu_);
  while (true) {
    fit_cv_.wait(lock, [this] { return fit_stop_ || fit_pending_; });
    if (fit_stop_) return;
    std::vector<Tensor> segments = std::move(fit_segments_);
    const int64_t ordinal = fit_job_ordinal_;
    fit_pending_ = false;
    lock.unlock();

    FitResult result;
    if (IMDIFF_FAULT("refresh.fit")) {
      IMDIFF_LOG(Warning) << "injected refresh.fit fault (attempt " << ordinal
                          << "); keeping the live version";
    } else {
      const std::shared_ptr<const ModelEntry> live =
          server_->sessions().model();
      ImDiffusionConfig config = live->detector->config();
      if (options_.fit_epochs > 0) config.epochs = options_.fit_epochs;
      if (options_.fit_stride > 0) config.train_stride = options_.fit_stride;
      auto detector = std::make_shared<ImDiffusionDetector>(config);
      // Train in the LIVE normalization space: streaming sessions keep the
      // stats they were created under, so the candidate must score — and,
      // once promoted, serve — the same normalized inputs the live model
      // does. The drift signal reaches the candidate through the window's
      // content, not through refitted statistics. Each tenant's snippet is a
      // separate segment so no training window crosses a tenant boundary.
      result.stats = detector->FitRawSegments(segments, &live->stats);
      result.detector = std::move(detector);
      result.ok = true;
    }

    lock.lock();
    fit_result_ = std::move(result);
    fit_done_ = true;
    fit_cv_.notify_all();
  }
}

bool RefreshTrainer::BeginShadowScore(
    uint64_t session_seed, int64_t block_index,
    std::shared_ptr<const ModelEntry>* shadow_model) {
  IMDIFF_CHECK(shadow_model != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kShadowing) return false;
  // Pure function of (refresh seed, session seed, block index): two replays
  // of the same stream shadow-score exactly the same blocks, regardless of
  // worker interleaving.
  const uint64_t key = MixSeed(
      options_.seed, MixSeed(session_seed, static_cast<uint64_t>(block_index)));
  if (options_.shadow_fraction < 1.0 &&
      static_cast<double>(key) * 0x1.0p-64 >= options_.shadow_fraction) {
    return false;
  }
  if (IMDIFF_FAULT_KEYED("refresh.shadow_score", key)) {
    // Crash mid-shadow: the candidate and every accumulated drift statistic
    // are discarded; serving continues on the live version and the next
    // cadence tick starts a fresh round.
    IMDIFF_LOG(Warning) << "injected refresh.shadow_score fault; discarding "
                        << "shadow round";
    MetricsRegistry::Global().GetCounter("refresh.shadow_aborts")->Increment();
    AbortShadowLocked(Event::Kind::kShadowAborted, shadow_model_->version);
    return false;
  }
  pairs_[{session_seed, block_index}] = PairSlot();
  *shadow_model = shadow_model_;
  return true;
}

void RefreshTrainer::AbortShadowLocked(Event::Kind kind,
                                       int64_t shadow_version) {
  options_.registry->DropShadow(options_.model_name);
  shadow_model_.reset();
  pairs_.clear();
  pairs_done_ = 0;
  live_sketch_.Reset();
  shadow_sketch_.Reset();
  agreement_.Reset();
  state_ = State::kIdle;
  Event event;
  event.kind = kind;
  event.fit_ordinal = fit_ordinal_;
  event.at_sample = samples_;
  event.live_version = LiveVersionLocked();
  event.shadow_version = shadow_version;
  AppendEventLocked(event);
}

void RefreshTrainer::OnScored(const BlockRequest& request,
                              const OnlineDetector::Alert& alert) {
  std::unique_lock<std::mutex> lock(mu_);
  if (state_ != State::kShadowing) return;  // stale completion after abort
  auto it = pairs_.find({request.session_seed, request.block_index});
  if (it == pairs_.end()) return;  // not selected for dual-scoring
  PairSlot& slot = it->second;
  const bool fired = std::any_of(alert.labels.begin(), alert.labels.end(),
                                 [](uint8_t l) { return l != 0; });
  // Sketch the RAW error channel when the detector exposes it: Eq. 12
  // self-calibrates `scores` against each block's own error quantile, which
  // makes the score mean nearly scale-invariant — blind to exactly the
  // error-level inflation that drift causes. The raw channel keeps the
  // scale, and both models score the same normalized inputs, so live vs
  // shadow raw errors are directly comparable.
  const std::vector<float>& channel =
      alert.raw_errors.empty() ? alert.scores : alert.raw_errors;
  if (request.shadow) {
    slot.shadow_done = true;
    slot.shadow_alert = fired;
    slot.shadow_scores = channel;
  } else {
    slot.live_done = true;
    slot.live_alert = fired;
    slot.live_scores = channel;
  }
  if (!slot.live_done || !slot.shadow_done) return;

  for (float v : slot.live_scores) live_sketch_.Add(v);
  for (float v : slot.shadow_scores) shadow_sketch_.Add(v);
  agreement_.Record(slot.live_alert, slot.shadow_alert);
  pairs_.erase(it);
  ++pairs_done_;
  if (pairs_done_ >= options_.verdict_pairs) ResolveVerdict(lock);
}

void RefreshTrainer::ResolveVerdict(std::unique_lock<std::mutex>& lock) {
  Event event;
  event.fit_ordinal = fit_ordinal_;
  event.at_sample = samples_;
  event.live_version = LiveVersionLocked();
  event.shadow_version = shadow_model_->version;
  event.psi = Psi(live_sketch_, shadow_sketch_);
  event.ks = KsDistance(live_sketch_, shadow_sketch_);
  event.agreement = agreement_.Rate();
  event.live_mean = live_sketch_.Mean();
  event.shadow_mean = shadow_sketch_.Mean();
  const bool diverged = event.psi >= options_.psi_promote ||
                        event.ks >= options_.ks_promote;
  // The shadow must consider current traffic LESS anomalous than the live
  // model: that is what drift looks like (the live model scores the new
  // regime high, the refit scores it low). A diverged-but-worse candidate is
  // a bad fit and must not serve.
  const bool improved =
      event.shadow_mean <= options_.mean_ratio_promote * event.live_mean;
  const bool promote = diverged && improved;
  const std::shared_ptr<const ModelEntry> shadow = shadow_model_;
  state_ = State::kResolving;
  lock.unlock();

  MetricsRegistry& metrics = MetricsRegistry::Global();
  if (promote) {
    bool failed = false;
    if (IMDIFF_FAULT("refresh.promote")) {
      IMDIFF_LOG(Warning) << "injected refresh.promote fault; rolling back "
                          << "shadow version " << shadow->version;
      failed = true;
    }
    // Checkpoint BEFORE the registry swap: a failed save aborts the
    // promotion and the previous checkpoint stays intact (SaveParameters
    // commits by rename), so a restart warm-loads the version that is
    // actually serving.
    if (!failed && !options_.checkpoint_path.empty()) {
      failed = !SaveModelWithRetry(*shadow->detector, options_.checkpoint_path,
                                   options_.save_backoff);
    }
    if (failed) {
      options_.registry->DropShadow(options_.model_name);
      metrics.GetCounter("refresh.promote_failures")->Increment();
      event.kind = Event::Kind::kPromoteFailed;
    } else {
      const std::shared_ptr<const ModelEntry> entry =
          options_.registry->PromoteShadow(options_.model_name);
      IMDIFF_CHECK(entry != nullptr);
      // Full hot-swap discipline (DESIGN.md §11/§18): session window caches
      // cleared and the degradation ladder's cost predictor reset — a
      // promotion is a model change exactly like a manual publish.
      server_->SwapModel(entry);
      metrics.GetCounter("refresh.promotions")->Increment();
      event.kind = Event::Kind::kPromoted;
      event.shadow_version = entry->version;  // authoritative promoted number
    }
  } else {
    options_.registry->DropShadow(options_.model_name);
    metrics.GetCounter("refresh.rollbacks")->Increment();
    event.kind = Event::Kind::kRolledBack;
  }

  lock.lock();
  shadow_model_.reset();
  pairs_.clear();
  pairs_done_ = 0;
  live_sketch_.Reset();
  shadow_sketch_.Reset();
  agreement_.Reset();
  state_ = State::kIdle;
  AppendEventLocked(event);
}

bool RefreshTrainer::shadow_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == State::kShadowing;
}

std::vector<RefreshTrainer::Event> RefreshTrainer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

}  // namespace serve
}  // namespace imdiff
