#include "serve/worker.h"

#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>

#include "net/channel.h"
#include "net/messages.h"
#include "net/socket.h"
#include "serve/model_registry.h"
#include "serve/session_manager.h"
#include "utils/logging.h"
#include "utils/metrics.h"

namespace imdiff {
namespace serve {
namespace {

// One dispatch pass needs the same handles every frame; resolve once.
struct WorkerMetrics {
  Counter* submit_retries;
  Counter* early_submits;
  Counter* protocol_errors;
  Counter* blocks_sent;

  WorkerMetrics()
      : submit_retries(
            MetricsRegistry::Global().GetCounter("net.submit_retries")),
        early_submits(
            MetricsRegistry::Global().GetCounter("net.early_submits")),
        protocol_errors(
            MetricsRegistry::Global().GetCounter("net.protocol_errors")),
        blocks_sent(
            MetricsRegistry::Global().GetCounter("net.blocks_sent")) {}
};

}  // namespace

int RunShardWorker(const WorkerOptions& options) {
  std::string error;
  net::UnixListener listener;
  if (!listener.Create(options.socket_path, &error)) {
    IMDIFF_LOG(Error) << "worker shard " << options.shard_id << ": " << error;
    return kWorkerExitBindFailed;
  }
  net::ServerChannel channel(std::move(listener));
  net::HelloMsg hello;
  hello.shard_id = options.shard_id;
  channel.set_hello(net::Encode(hello));

  WorkerMetrics metrics;
  Counter* degraded = MetricsRegistry::Global().GetCounter(
      "serve.degraded_blocks");
  Counter* precision_drops = MetricsRegistry::Global().GetCounter(
      "serve.precision_drops");
  Counter* promotions = MetricsRegistry::Global().GetCounter(
      "refresh.promotions");
  Counter* shadow_blocks = MetricsRegistry::Global().GetCounter(
      "serve.shadow_blocks");

  ModelRegistry registry;
  std::unique_ptr<StreamServer> server;
  // kCrash abandons state: the flag stops batcher threads mid-flight from
  // pushing more scored blocks while the StreamServer destructor drains.
  std::atomic<bool> suppress_alerts{false};
  std::atomic<int64_t> alert_blocks{0};

  auto on_alert = [&](const StreamServer::ScoredBlock& block) {
    if (suppress_alerts.load(std::memory_order_relaxed)) return;
    // Shadow dual-scores (continuous refresh, DESIGN.md §18) stay inside the
    // worker: they exist for this shard's drift statistics, and forwarding
    // them would corrupt the router's positional score assembly (a shadow
    // block covers the same positions as its live twin with different
    // scores — a guaranteed conflict).
    if (block.shadow) return;
    net::ScoredBlockMsg msg;
    msg.tenant = block.tenant;
    msg.block_index = block.block_index;
    msg.start = block.alert.start;
    msg.degrade_level = block.degrade_level;
    msg.precision = static_cast<int64_t>(block.precision);
    msg.latency_seconds = block.latency_seconds;
    msg.scores = block.alert.scores;
    channel.Send(net::Encode(msg));
    metrics.blocks_sent->Increment();
    alert_blocks.fetch_add(1, std::memory_order_relaxed);
  };

  net::Frame frame;
  while (channel.Next(&frame) == net::ServerChannel::Status::kFrame) {
    switch (static_cast<net::MsgType>(frame.type)) {
      case net::MsgType::kPublish: {
        net::PublishMsg m;
        if (!net::Decode(frame, &m)) {
          metrics.protocol_errors->Increment();
          break;
        }
        ImDiffusionConfig config = options.config;
        config.seed = m.config_seed;
        MinMaxStats stats;
        stats.min = m.stats_min;
        stats.max = m.stats_max;
        net::PublishResultMsg result;
        result.version = registry.PublishFromFile(m.name, config,
                                                  m.checkpoint_path,
                                                  m.num_features, stats);
        if (result.version > 0) {
          std::shared_ptr<const ModelEntry> model = registry.Acquire(m.name);
          if (server == nullptr) {
            // The refresh loop targets whatever name the router published:
            // the registry handle and model name can only be bound here.
            StreamServer::Options serve = options.serve;
            if (serve.refresh.enabled) {
              serve.refresh.registry = &registry;
              serve.refresh.model_name = m.name;
            }
            server = std::make_unique<StreamServer>(model, serve, on_alert);
          } else {
            server->SwapModel(model);
          }
        }
        channel.Send(net::Encode(result));
        break;
      }
      case net::MsgType::kSubmit: {
        net::SubmitMsg m;
        if (!net::Decode(frame, &m)) {
          metrics.protocol_errors->Increment();
          break;
        }
        if (server == nullptr) {
          // Protocol order is publish-then-submit; a sample with no model is
          // a router bug, surfaced as a counter rather than a crash.
          metrics.early_submits->Increment();
          break;
        }
        // Retry until the shard queue accepts: the worker is lossless by
        // construction — backpressure slows the dispatch loop (and thereby
        // the router's socket) instead of shedding. serve.requests_dropped
        // still counts the rejected attempts; net.submit_retries is the
        // worker-side view of the same events.
        while (!server->Submit(m.tenant, m.sample, m.observed)) {
          metrics.submit_retries->Increment();
          std::this_thread::yield();
        }
        break;
      }
      case net::MsgType::kDrain: {
        net::DrainMsg m;
        if (!net::Decode(frame, &m)) {
          metrics.protocol_errors->Increment();
          break;
        }
        if (server != nullptr) server->Drain();
        net::DrainResultMsg result;
        result.token = m.token;
        result.accepted = server != nullptr ? server->accepted() : 0;
        result.shed = server != nullptr ? server->dropped() : 0;
        result.alerts = alert_blocks.load(std::memory_order_relaxed);
        result.degraded_blocks = degraded->value();
        result.precision_drops = precision_drops->value();
        result.promotions = promotions->value();
        result.shadow_blocks = shadow_blocks->value();
        channel.Send(net::Encode(result));
        break;
      }
      case net::MsgType::kExportState: {
        net::ExportStateMsg m;
        if (!net::Decode(frame, &m)) {
          metrics.protocol_errors->Increment();
          break;
        }
        net::ExportResultMsg result;
        SessionSnapshot snapshot;
        if (server != nullptr &&
            server->sessions().ExportSession(m.tenant, &snapshot)) {
          result.found = 1;
          result.session.tenant = m.tenant;
          result.session.state = SerializeSession(snapshot);
        }
        channel.Send(net::Encode(result));
        break;
      }
      case net::MsgType::kImportState: {
        net::ImportStateMsg m;
        if (!net::Decode(frame, &m)) {
          metrics.protocol_errors->Increment();
          break;
        }
        net::ImportResultMsg result;
        SessionSnapshot snapshot;
        if (server != nullptr &&
            DeserializeSession(m.session.state, &snapshot)) {
          server->sessions().ImportSession(m.session.tenant, snapshot);
          result.ok = 1;
        }
        channel.Send(net::Encode(result));
        break;
      }
      case net::MsgType::kSnapshot: {
        net::SnapshotMsg m;
        if (!net::Decode(frame, &m)) {
          metrics.protocol_errors->Increment();
          break;
        }
        net::SnapshotResultMsg result;
        result.token = m.token;
        if (server != nullptr) {
          // The router snapshots only at drain barriers, so no session has a
          // block in flight; one that does (a protocol violation) is skipped
          // and the router keeps its previous copy of that tenant.
          for (const std::string& tenant : server->sessions().Tenants()) {
            SessionSnapshot snapshot;
            if (!server->sessions().SnapshotSession(tenant, &snapshot)) {
              metrics.protocol_errors->Increment();
              continue;
            }
            net::SessionBlob blob;
            blob.tenant = tenant;
            blob.state = SerializeSession(snapshot);
            result.sessions.push_back(std::move(blob));
          }
        }
        channel.Send(net::Encode(result));
        break;
      }
      case net::MsgType::kHealth: {
        net::HealthResultMsg result;
        result.pid = static_cast<int64_t>(::getpid());
        if (server != nullptr) {
          result.accepted = server->accepted();
          result.shed = server->dropped();
          result.resident_sessions = server->sessions().resident_sessions();
          result.stashed_sessions = server->sessions().stashed_sessions();
        }
        channel.Send(net::Encode(result));
        break;
      }
      case net::MsgType::kMetrics: {
        net::MetricsResultMsg result;
        result.json = MetricsToJson();
        channel.Send(net::Encode(result));
        break;
      }
      case net::MsgType::kShutdown: {
        if (server != nullptr) server->Shutdown();
        channel.Close();
        return kWorkerExitOk;
      }
      case net::MsgType::kCrash: {
        // Chaos kill: stop emitting, drop the connection, abandon every
        // session. The StreamServer destructor still drains its queues (the
        // process would just exit in a real kill -9), but with alerts
        // suppressed nothing more reaches the router — exactly the lost-
        // in-flight-tail the router's journal replay has to repair.
        suppress_alerts.store(true, std::memory_order_relaxed);
        channel.Close();
        return kWorkerExitCrashed;
      }
      default:
        metrics.protocol_errors->Increment();
        break;
    }
  }
  // Next() returned kDown without a shutdown message: the channel was closed
  // under us (owner teardown). Treat as graceful.
  if (server != nullptr) server->Shutdown();
  return kWorkerExitOk;
}

}  // namespace serve
}  // namespace imdiff
