// Traffic replay over the serving layer, plus the serving-path Table 7
// evaluation.
//
// ReplayThroughServer pushes N tenants' raw streams through a StreamServer
// (round-robin, the interleaving a real multi-tenant ingest produces) and
// assembles each tenant's emitted score stream. ReplaySerial is the ground
// truth and throughput baseline: one tenant scored block-by-block with fresh
// windows — no cross-session batching, no window-score cache. The serving
// path must match it bitwise (see serve/session_manager.h) while spending
// roughly half the model forwards.

#ifndef IMDIFF_SERVE_REPLAY_H_
#define IMDIFF_SERVE_REPLAY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/ugly_stream.h"
#include "eval/runner.h"
#include "serve/server.h"

namespace imdiff {
namespace serve {

// One tenant's raw (unnormalized) sample stream.
struct TenantStream {
  std::string tenant;
  Tensor samples;  // [L, K]
  // Per-entry observation flags, [L * K] row-major (1 = observed); empty =
  // fully observed. Missing entries route through the carry-forward fill
  // (core/online_detector.h) — their values in `samples` are never read.
  std::vector<uint8_t> observed;
};

// Scores one tenant serially: every ready block is scored fresh through
// ScoreBlock. Returns the assembled per-position score stream (length L;
// positions never emitted stay 0). Bitwise reference for the served path.
// `degrade_level` / `precision` score every block at that ladder rung — the
// reference for a run whose blocks were uniformly pinned (--force-degrade /
// --precision).
std::vector<float> ReplaySerial(const ModelEntry& model,
                                const OnlineDetector::Options& online,
                                uint64_t seed_base, const TenantStream& stream,
                                int degrade_level = 0,
                                Precision precision = Precision::kF32);

struct ReplayStats {
  // Assembled per-tenant score streams (length L each).
  std::map<std::string, std::vector<float>> scores;
  int64_t submitted = 0;
  int64_t rejected = 0;  // backpressure rejections (samples were retried)
  int64_t alerts = 0;
  int64_t degraded_alerts = 0;  // alerts scored at degrade_level > 0
  int64_t precision_dropped_alerts = 0;  // alerts scored below fp32
  double seconds = 0.0;            // submit of first sample → drain complete
  double points_per_second = 0.0;  // total samples / seconds
};

// Replays the tenant streams round-robin through a StreamServer built from
// `options`. Rejected submissions are retried until accepted so every sample
// is eventually processed (`rejected` counts the shed attempts); the score
// streams are therefore complete and comparable to ReplaySerial.
// `paced` (the default) drains the server after every round of `block`
// samples per tenant, modeling the production cadence where a block is
// scored long before the next one fills (30 s per sample in the paper's
// deployment). Pacing is what lets overlapping windows hit the score cache:
// an unpaced firehose replay plans block n+1 before block n's scores are
// written back, so every window scores fresh.
ReplayStats ReplayThroughServer(std::shared_ptr<const ModelEntry> model,
                                const std::vector<TenantStream>& streams,
                                const StreamServer::Options& options,
                                bool paced = true);

// Table 7 through the serving path: fits ImDiffusion on the train split,
// publishes it, streams the raw test split as one tenant through a
// StreamServer, and computes the usual metrics on the emitted scores —
// except that points/second is end-to-end serving throughput (queueing +
// batching + scoring) and ADD counts a detection only from the moment its
// block was emitted, so both reflect queued serving latency rather than raw
// batch inference.
RunMetrics EvaluateServed(const MtsDataset& dataset, uint64_t seed,
                          SpeedProfile profile,
                          const StreamServer::Options& options);

// EvaluateManySeeds analogue for the served path (seeds run serially: the
// server already owns the process's worker threads).
AggregateMetrics EvaluateServedManySeeds(const MtsDataset& dataset,
                                         int num_seeds, SpeedProfile profile,
                                         const StreamServer::Options& options);

// Emission-aware detection delay: like AverageDetectionDelay, but an alarm
// at position t only counts once its block has been emitted (the last index
// of t's block), matching what a consumer of the alert stream observes.
double ServedDetectionDelay(const std::vector<uint8_t>& labels,
                            const std::vector<uint8_t>& predictions,
                            int64_t block);

// ---------------------------------------------------------------------------
// Zipf-scale load generation (DESIGN.md §15).
//
// ReplayLoad drives a StreamServer with the ugly-traffic workload: tenant
// popularity is Zipf-distributed, traffic arrives as heavy-tailed bursts
// (one tenant streams a Pareto-length run of samples, then another), and
// every tenant's stream comes from data/ugly_stream.h — missing entries,
// sampling gaps, drift, regime shifts, seasonal envelopes. The schedule
// (which tenant, how many samples, in what order) is a pure function of
// `seed`, so two runs with the same config submit the identical sample
// sequence and — with a single worker and drain-point-only flushes — produce
// bitwise-identical score streams.

struct LoadConfig {
  int64_t num_tenants = 1000;
  // Total samples across all tenants; the schedule stops when spent.
  int64_t total_samples = 100000;
  uint64_t seed = 1;
  // Zipf popularity exponent: tenant rank r is drawn with probability
  // proportional to 1 / (r + 1)^zipf_exponent.
  double zipf_exponent = 1.1;
  // Burst sizes are Pareto(min = burst_min, tail = burst_tail): mostly short
  // runs, occasionally a tenant that floods.
  int64_t burst_min = 4;
  double burst_tail = 1.2;
  // Drain the server after this many accepted samples (0 = only at the
  // end). Draining at deterministic points in the submission sequence —
  // never on a wall-clock cadence — is what keeps eviction order, and hence
  // the whole run, reproducible.
  int64_t drain_every = 4096;
  // Per-tenant stream recipe; `length` and `dims` are overridden per tenant
  // (scheduled sample count / the model's feature count).
  UglyStreamConfig stream;
  // Keep every tenant's emitted score stream in LoadStats::scores (the
  // bitwise-reproducibility artifact). Costs O(total_samples) floats.
  bool collect_scores = false;
};

struct LoadStats {
  int64_t tenants = 0;  // tenants that received traffic
  int64_t submitted = 0;
  int64_t rejected = 0;  // backpressure rejections (samples were retried)
  int64_t alerts = 0;
  int64_t degraded_alerts = 0;
  int64_t precision_dropped_alerts = 0;  // alerts scored below fp32
  double seconds = 0.0;
  double points_per_second = 0.0;
  // Cross-tenant spread of per-tenant latency percentiles: each tenant's
  // ready-to-alert latencies are reduced to that tenant's p50/p99, and the
  // spread summarizes those values across tenants — tenant_p99.p50 is the
  // median tenant's p99, tenant_p99.max the worst tenant's p99. This is the
  // per-tenant view a global histogram hides: a Zipf head tenant can be slow
  // in every percentile while the global p99 still looks healthy.
  struct Spread {
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };
  Spread tenant_p50;
  Spread tenant_p99;
  // Serving-layer churn over the run (counter deltas).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double cache_hit_rate = 0.0;  // hits / (hits + misses), 0 when no lookups
  int64_t sessions_evicted = 0;
  int64_t sessions_rehydrated = 0;
  int64_t rehydrate_failures = 0;
  int64_t stash_evictions = 0;
  int64_t missing_filled = 0;  // feature values filled by carry-forward
  int64_t peak_rss_kb = -1;    // ProcessPeakRssKb() after the run
  // Continuous-refresh activity (DESIGN.md §18): shadow dual-scored blocks
  // (counter delta) and the ordered promotion-decision log, captured before
  // server shutdown. Shadow blocks are excluded from `alerts`, the latency
  // spreads, and the assembled score streams.
  int64_t shadow_blocks = 0;
  std::vector<RefreshTrainer::Event> refresh_events;
  // Per-tenant score streams (only when LoadConfig::collect_scores).
  std::map<std::string, std::vector<float>> scores;
};

LoadStats ReplayLoad(std::shared_ptr<const ModelEntry> model,
                     const LoadConfig& config,
                     const StreamServer::Options& options);

// ---------------------------------------------------------------------------
// Sharded load replay (DESIGN.md §16): the same deterministic workload
// driven through a ShardRouter over N worker processes.

// The materialized workload: burst schedule plus every active tenant's ugly
// stream. A pure function of (config, num_features) with the exact RNG draw
// order ReplayLoad has always used, so plans built for the single-process
// and sharded paths are identical — the precondition for comparing their
// score dumps bitwise.
struct LoadPlan {
  struct Burst {
    int64_t tenant = 0;
    int64_t length = 0;
  };
  std::vector<Burst> schedule;
  // Tenant rank -> stream, only ranks with traffic.
  std::map<int64_t, UglyStream> streams;
  int64_t tenants = 0;
  bool any_missing = false;
};
LoadPlan BuildLoadPlan(const LoadConfig& config, int64_t num_features);

// Canonical tenant name for rank `t` ("tenant-000042") — shared by both
// replay paths and the score-dump format.
std::string LoadTenantName(int64_t tenant);

struct ShardedLoadConfig {
  LoadConfig load;
  // Live resharding cadence: after every `reshard_every`-th drain barrier
  // (0 = never), move `reshard_tenants` active tenants to the next alive
  // shard (round-robin over tenant ranks — deterministic).
  int64_t reshard_every = 0;
  int64_t reshard_tenants = 1;
};

struct ShardedLoadStats {
  int64_t tenants = 0;
  int64_t submitted = 0;
  int64_t alerts = 0;          // scored blocks delivered (incl. duplicates)
  int64_t degraded_alerts = 0;
  int64_t precision_dropped_alerts = 0;
  // Positional score assembly: every position written once; a re-delivered
  // block (shard-down recovery replay) must match the first delivery
  // bitwise. Conflicts are the hard failure --fail-on-shed trips on.
  int64_t positions_written = 0;
  int64_t duplicate_blocks = 0;
  int64_t score_conflicts = 0;
  // From the final drain barrier (cumulative over surviving workers).
  int64_t accepted = 0;
  int64_t shed = 0;
  int64_t degraded_blocks = 0;
  int64_t precision_drops = 0;
  // Continuous-refresh activity summed over surviving workers (each shard
  // runs its own refresh loop on its own tenants).
  int64_t promotions = 0;
  int64_t shadow_blocks = 0;
  // Chaos / resharding activity during the run.
  int64_t moves = 0;
  int64_t crashes = 0;
  double seconds = 0.0;
  double points_per_second = 0.0;
  LoadStats::Spread tenant_p50;
  LoadStats::Spread tenant_p99;
  int64_t peak_rss_kb = -1;
  // Per-tenant score streams (only when LoadConfig::collect_scores).
  std::map<std::string, std::vector<float>> scores;
};

class ShardRouter;  // serve/router.h

// Replays the planned workload through `router` (already connected and
// published). Drains on the accepted-sample cadence (config.load.drain_every)
// like ReplayLoad; fires the "router.shard_down" fault point once per burst,
// crashing the first alive shard when armed; moves tenants per the reshard
// cadence. Scores are assembled positionally with conflict detection.
ShardedLoadStats ReplayLoadSharded(ShardRouter& router,
                                   const ShardedLoadConfig& config,
                                   int64_t num_features);

}  // namespace serve
}  // namespace imdiff

#endif  // IMDIFF_SERVE_REPLAY_H_
