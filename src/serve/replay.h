// Traffic replay over the serving layer, plus the serving-path Table 7
// evaluation.
//
// ReplayThroughServer pushes N tenants' raw streams through a StreamServer
// (round-robin, the interleaving a real multi-tenant ingest produces) and
// assembles each tenant's emitted score stream. ReplaySerial is the ground
// truth and throughput baseline: one tenant scored block-by-block with fresh
// windows — no cross-session batching, no window-score cache. The serving
// path must match it bitwise (see serve/session_manager.h) while spending
// roughly half the model forwards.

#ifndef IMDIFF_SERVE_REPLAY_H_
#define IMDIFF_SERVE_REPLAY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "eval/runner.h"
#include "serve/server.h"

namespace imdiff {
namespace serve {

// One tenant's raw (unnormalized) sample stream.
struct TenantStream {
  std::string tenant;
  Tensor samples;  // [L, K]
};

// Scores one tenant serially: every ready block is scored fresh through
// ScoreBlock. Returns the assembled per-position score stream (length L;
// positions never emitted stay 0). Bitwise reference for the served path.
// `degrade_level` scores every block at that ladder rung — the reference for
// a run whose deadline policy degraded uniformly.
std::vector<float> ReplaySerial(const ModelEntry& model,
                                const OnlineDetector::Options& online,
                                uint64_t seed_base, const TenantStream& stream,
                                int degrade_level = 0);

struct ReplayStats {
  // Assembled per-tenant score streams (length L each).
  std::map<std::string, std::vector<float>> scores;
  int64_t submitted = 0;
  int64_t rejected = 0;  // backpressure rejections (samples were retried)
  int64_t alerts = 0;
  int64_t degraded_alerts = 0;  // alerts scored at degrade_level > 0
  double seconds = 0.0;            // submit of first sample → drain complete
  double points_per_second = 0.0;  // total samples / seconds
};

// Replays the tenant streams round-robin through a StreamServer built from
// `options`. Rejected submissions are retried until accepted so every sample
// is eventually processed (`rejected` counts the shed attempts); the score
// streams are therefore complete and comparable to ReplaySerial.
// `paced` (the default) drains the server after every round of `block`
// samples per tenant, modeling the production cadence where a block is
// scored long before the next one fills (30 s per sample in the paper's
// deployment). Pacing is what lets overlapping windows hit the score cache:
// an unpaced firehose replay plans block n+1 before block n's scores are
// written back, so every window scores fresh.
ReplayStats ReplayThroughServer(std::shared_ptr<const ModelEntry> model,
                                const std::vector<TenantStream>& streams,
                                const StreamServer::Options& options,
                                bool paced = true);

// Table 7 through the serving path: fits ImDiffusion on the train split,
// publishes it, streams the raw test split as one tenant through a
// StreamServer, and computes the usual metrics on the emitted scores —
// except that points/second is end-to-end serving throughput (queueing +
// batching + scoring) and ADD counts a detection only from the moment its
// block was emitted, so both reflect queued serving latency rather than raw
// batch inference.
RunMetrics EvaluateServed(const MtsDataset& dataset, uint64_t seed,
                          SpeedProfile profile,
                          const StreamServer::Options& options);

// EvaluateManySeeds analogue for the served path (seeds run serially: the
// server already owns the process's worker threads).
AggregateMetrics EvaluateServedManySeeds(const MtsDataset& dataset,
                                         int num_seeds, SpeedProfile profile,
                                         const StreamServer::Options& options);

// Emission-aware detection delay: like AverageDetectionDelay, but an alarm
// at position t only counts once its block has been emitted (the last index
// of t's block), matching what a consumer of the alert stream observes.
double ServedDetectionDelay(const std::vector<uint8_t>& labels,
                            const std::vector<uint8_t>& predictions,
                            int64_t block);

}  // namespace serve
}  // namespace imdiff

#endif  // IMDIFF_SERVE_REPLAY_H_
