#include "serve/router.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "net/channel.h"
#include "utils/logging.h"
#include "utils/metrics.h"
#include "utils/rng.h"

namespace imdiff {
namespace serve {
namespace {

struct RouterMetrics {
  Counter* recoveries;
  Counter* displaced;
  Counter* journal_replays;
  Counter* moves;
  Counter* blocks_received;
  Counter* protocol_errors;

  RouterMetrics()
      : recoveries(MetricsRegistry::Global().GetCounter(
            "router.shard_down_recoveries")),
        displaced(
            MetricsRegistry::Global().GetCounter("router.tenants_displaced")),
        journal_replays(
            MetricsRegistry::Global().GetCounter("router.journal_replays")),
        moves(MetricsRegistry::Global().GetCounter("router.moves")),
        blocks_received(
            MetricsRegistry::Global().GetCounter("router.blocks_received")),
        protocol_errors(
            MetricsRegistry::Global().GetCounter("net.protocol_errors")) {}
};

RouterMetrics& Metrics() {
  static RouterMetrics* m = new RouterMetrics();
  return *m;
}

}  // namespace

struct ShardRouter::Shard {
  int64_t id = 0;
  std::string path;
  std::unique_ptr<net::ClientChannel> channel;
  std::thread reader;

  std::mutex mu;
  std::condition_variable cv;
  bool conn_down = false;  // reader thread exited (channel went kDown)
  bool hello_seen = false;
  int64_t hello_id = -1;
  bool has_response = false;
  net::Frame response;

  // Control-plane only (single owner thread): recovery has processed this
  // shard; it is off the ring and its channel is closed.
  bool dead = false;
};

ShardRouter::ShardRouter(const RouterOptions& options, BlockCallback on_block)
    : options_(options), on_block_(std::move(on_block)) {}

ShardRouter::~ShardRouter() {
  ShutdownAll();
}

void ShardRouter::set_on_block(BlockCallback on_block) {
  std::lock_guard<std::mutex> lock(on_block_mu_);
  on_block_ = std::move(on_block);
}

ShardRouter::Shard* ShardRouter::FindShard(int64_t shard_id) {
  for (auto& s : shards_) {
    if (s->id == shard_id) return s.get();
  }
  return nullptr;
}

void ShardRouter::ReaderLoop(Shard* shard) {
  net::Frame frame;
  while (shard->channel->Recv(&frame) ==
         net::ClientChannel::Status::kFrame) {
    const auto type = static_cast<net::MsgType>(frame.type);
    if (type == net::MsgType::kHello) {
      net::HelloMsg hello;
      const bool ok = net::Decode(frame, &hello);
      if (!ok) Metrics().protocol_errors->Increment();
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->hello_seen = true;
        shard->hello_id = ok ? hello.shard_id : -1;
      }
      shard->cv.notify_all();
      continue;
    }
    if (type == net::MsgType::kScoredBlock) {
      net::ScoredBlockMsg block;
      if (!net::Decode(frame, &block)) {
        Metrics().protocol_errors->Increment();
        continue;
      }
      Metrics().blocks_received->Increment();
      {
        std::lock_guard<std::mutex> lock(on_block_mu_);
        if (on_block_) on_block_(shard->id, block);
      }
      continue;
    }
    // Control response: deposit (overwriting a stale one — only responses
    // from an aborted barrier round can be overwritten, and those are
    // discarded by the awaiting side anyway).
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->response = std::move(frame);
      shard->has_response = true;
    }
    shard->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->conn_down = true;
  }
  shard->cv.notify_all();
}

bool ShardRouter::Connect() {
  if (options_.shards.empty()) {
    error_ = "router: no shards configured";
    return false;
  }
  std::set<int64_t> ids;
  std::set<std::string> paths;
  for (const ShardSpec& spec : options_.shards) {
    if (!ids.insert(spec.id).second) {
      error_ = "router: duplicate shard id " + std::to_string(spec.id);
      return false;
    }
    if (!paths.insert(spec.socket_path).second) {
      error_ = "router: duplicate socket path " + spec.socket_path;
      return false;
    }
  }
  for (const ShardSpec& spec : options_.shards) {
    auto shard = std::make_unique<Shard>();
    shard->id = spec.id;
    shard->path = spec.socket_path;
    shard->channel = std::make_unique<net::ClientChannel>(
        spec.socket_path, options_.reconnect,
        MixSeed(options_.seed, static_cast<uint64_t>(spec.id)),
        options_.inject_faults);
    if (!shard->channel->Connect()) {
      error_ = "router: cannot reach shard " + std::to_string(spec.id) +
               " at " + spec.socket_path;
      return false;
    }
    shard->reader = std::thread(&ShardRouter::ReaderLoop, this, shard.get());
    shards_.push_back(std::move(shard));
  }
  // Hello handshake: every worker announces its shard id as the first frame;
  // a mismatch means crossed sockets (two workers launched with swapped
  // paths, or a stale worker of another run still bound there).
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->cv.wait(lock,
                   [&] { return shard->hello_seen || shard->conn_down; });
    if (!shard->hello_seen || shard->hello_id != shard->id) {
      error_ = "router: shard " + std::to_string(shard->id) + " at " +
               shard->path + " identified as " +
               std::to_string(shard->hello_id);
      return false;
    }
  }
  for (const ShardSpec& spec : options_.shards) {
    for (int v = 0; v < options_.vnodes; ++v) {
      ring_[MixSeed(static_cast<uint64_t>(spec.id),
                    static_cast<uint64_t>(v))] = spec.id;
    }
  }
  return true;
}

bool ShardRouter::AwaitResponse(Shard* shard, net::MsgType want,
                                net::Frame* response) {
  std::unique_lock<std::mutex> lock(shard->mu);
  while (true) {
    shard->cv.wait(lock,
                   [&] { return shard->has_response || shard->conn_down; });
    if (shard->has_response) {
      net::Frame frame = std::move(shard->response);
      shard->has_response = false;
      if (static_cast<net::MsgType>(frame.type) == want) {
        *response = std::move(frame);
        return true;
      }
      // Stale response from an aborted barrier round; drop and keep waiting.
      continue;
    }
    return false;
  }
}

bool ShardRouter::Request(Shard* shard, const net::Frame& request,
                          net::MsgType want, net::Frame* response) {
  if (shard->dead || !shard->channel->Send(request)) return false;
  return AwaitResponse(shard, want, response);
}

int64_t ShardRouter::Place(const std::string& tenant) const {
  if (ring_.empty()) return -1;
  // FNV alone clusters near-identical names ("tenant-000041" vs ...42) in
  // the high bits the ring compares on; the splitmix finalizer decorrelates
  // them so sequentially-named tenants still spread across shards.
  const uint64_t h = MixSeed(HashBytes(tenant.data(), tenant.size()), 0);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

int64_t ShardRouter::ShardOf(const std::string& tenant) {
  auto it = assignment_.find(tenant);
  if (it != assignment_.end()) return it->second;
  return Place(tenant);
}

int64_t ShardRouter::alive_shards() const {
  int64_t alive = 0;
  for (const auto& s : shards_) {
    if (!s->dead) ++alive;
  }
  return alive;
}

std::vector<int64_t> ShardRouter::AliveShards() const {
  std::vector<int64_t> ids;
  for (const auto& s : shards_) {
    if (!s->dead) ids.push_back(s->id);
  }
  return ids;
}

bool ShardRouter::Publish(const std::string& name,
                          const std::string& checkpoint_path,
                          int64_t num_features, uint64_t config_seed,
                          const std::vector<float>& stats_min,
                          const std::vector<float>& stats_max) {
  net::PublishMsg msg;
  msg.name = name;
  msg.checkpoint_path = checkpoint_path;
  msg.num_features = num_features;
  msg.config_seed = config_seed;
  msg.stats_min = stats_min;
  msg.stats_max = stats_max;
  const net::Frame frame = net::Encode(msg);
  // Pipelined: all shards load the checkpoint concurrently.
  for (auto& shard : shards_) {
    if (shard->dead) continue;
    if (!shard->channel->Send(frame)) {
      error_ = "router: publish send failed on shard " +
               std::to_string(shard->id);
      return false;
    }
  }
  for (auto& shard : shards_) {
    if (shard->dead) continue;
    net::Frame response;
    net::PublishResultMsg result;
    if (!AwaitResponse(shard.get(), net::MsgType::kPublishResult,
                       &response) ||
        !net::Decode(response, &result) || result.version <= 0) {
      error_ = "router: shard " + std::to_string(shard->id) +
               " failed to load " + checkpoint_path;
      return false;
    }
  }
  return true;
}

bool ShardRouter::Submit(const std::string& tenant,
                         const std::vector<float>& sample,
                         const std::vector<uint8_t>& observed) {
  journal_.push_back(JournalEntry{tenant, sample, observed});
  const int64_t shard_id = ShardOf(tenant);
  if (shard_id < 0) return false;
  assignment_[tenant] = shard_id;  // pin before send: recovery must see it
  Shard* shard = FindShard(shard_id);
  net::SubmitMsg msg;
  msg.tenant = tenant;
  msg.sample = sample;
  msg.observed = observed;
  if (shard != nullptr && !shard->dead &&
      shard->channel->Send(net::Encode(msg))) {
    return true;
  }
  // The shard died under us. Recovery re-places its tenants and replays the
  // journal — which already holds this sample, so there is nothing to
  // resend here.
  return HandleShardDown(shard_id);
}

ShardRouter::SendStatus ShardRouter::SendJournaled(
    const std::string& tenant, const std::vector<float>& sample,
    const std::vector<uint8_t>& observed) {
  net::SubmitMsg msg;
  msg.tenant = tenant;
  msg.sample = sample;
  msg.observed = observed;
  Shard* shard = FindShard(assignment_[tenant]);
  if (shard != nullptr && !shard->dead &&
      shard->channel->Send(net::Encode(msg))) {
    return SendStatus::kSent;
  }
  // The replacement died mid-replay; its recovery re-places this tenant and
  // replays the whole journal again from the stash copy.
  if (shard == nullptr || !HandleShardDown(shard->id)) {
    return SendStatus::kFailed;
  }
  return SendStatus::kReplayed;
}

bool ShardRouter::HandleShardDown(int64_t shard_id) {
  Shard* shard = FindShard(shard_id);
  if (shard == nullptr) return alive_shards() > 0;
  if (shard->dead) return alive_shards() > 0;  // already recovered
  shard->dead = true;
  Metrics().recoveries->Increment();
  IMDIFF_LOG(Warning) << "router: shard " << shard_id
                      << " down, re-placing its tenants";
  shard->channel->Close();
  if (shard->reader.joinable()) shard->reader.join();
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == shard_id ? ring_.erase(it) : std::next(it);
  }
  if (ring_.empty()) {
    error_ = "router: all shards down";
    return false;
  }
  std::vector<std::string> displaced;
  for (const auto& [tenant, assigned] : assignment_) {
    if (assigned == shard_id) displaced.push_back(tenant);
  }
  for (const std::string& tenant : displaced) {
    const int64_t target = Place(tenant);
    assignment_[tenant] = target;
    Metrics().displaced->Increment();
    Shard* survivor = FindShard(target);
    // Rehydrate the barrier-time state, then replay the journaled samples
    // since the barrier in their original order: the survivor rebuilds
    // exactly the sample sequence the dead shard had seen.
    auto stashed = stash_.find(tenant);
    if (stashed != stash_.end()) {
      net::ImportStateMsg import;
      import.session.tenant = tenant;
      import.session.state = stashed->second;
      net::Frame response;
      net::ImportResultMsg result;
      if (!Request(survivor, net::Encode(import),
                   net::MsgType::kImportResult, &response)) {
        if (!HandleShardDown(target)) return false;
        continue;  // the nested recovery finished this tenant
      }
      if (!net::Decode(response, &result) || result.ok == 0) {
        Metrics().protocol_errors->Increment();
        error_ = "router: shard " + std::to_string(target) +
                 " rejected session import for " + tenant;
        return false;
      }
    }
    for (const JournalEntry& entry : journal_) {
      if (entry.tenant != tenant) continue;
      const SendStatus status =
          SendJournaled(tenant, entry.sample, entry.observed);
      if (status == SendStatus::kFailed) return false;
      if (status == SendStatus::kReplayed) break;  // nested recovery did it
      Metrics().journal_replays->Increment();
    }
  }
  return true;
}

bool ShardRouter::AwaitDrainResult(Shard* shard, uint64_t token,
                                   net::DrainResultMsg* out) {
  while (true) {
    net::Frame response;
    if (!AwaitResponse(shard, net::MsgType::kDrainResult, &response)) {
      return false;
    }
    if (!net::Decode(response, out)) {
      Metrics().protocol_errors->Increment();
      return false;
    }
    if (out->token == token) return true;
    // A result from an earlier, aborted barrier round; discard.
  }
}

bool ShardRouter::AwaitSnapshotResult(Shard* shard, uint64_t token,
                                      net::SnapshotResultMsg* out) {
  while (true) {
    net::Frame response;
    if (!AwaitResponse(shard, net::MsgType::kSnapshotResult, &response)) {
      return false;
    }
    if (!net::Decode(response, out)) {
      Metrics().protocol_errors->Increment();
      return false;
    }
    if (out->token == token) return true;
  }
}

bool ShardRouter::DrainAll(DrainTotals* totals) {
  // Each round either commits or loses a shard; at most shards-many retries.
  for (size_t round = 0; round <= shards_.size(); ++round) {
    const uint64_t token = ++barrier_token_;
    int64_t failed = -1;
    net::DrainMsg drain;
    drain.token = token;
    const net::Frame drain_frame = net::Encode(drain);
    for (auto& shard : shards_) {
      if (shard->dead) continue;
      if (!shard->channel->Send(drain_frame)) {
        failed = shard->id;
        break;
      }
    }
    DrainTotals sums;
    if (failed < 0) {
      for (auto& shard : shards_) {
        if (shard->dead) continue;
        net::DrainResultMsg result;
        if (!AwaitDrainResult(shard.get(), token, &result)) {
          failed = shard->id;
          break;
        }
        sums.accepted += result.accepted;
        sums.shed += result.shed;
        sums.alerts += result.alerts;
        sums.degraded_blocks += result.degraded_blocks;
        sums.precision_drops += result.precision_drops;
        sums.promotions += result.promotions;
        sums.shadow_blocks += result.shadow_blocks;
      }
    }
    if (failed < 0 && options_.snapshot_on_drain) {
      // Refresh the stash copies, all-or-nothing: only when every live shard
      // reports does the new epoch replace the old one and the journal
      // clear. A partial refresh must not commit — importing a post-barrier
      // state and then replaying the old journal would double-append the
      // samples in between.
      net::SnapshotMsg snap;
      snap.token = token;
      const net::Frame snap_frame = net::Encode(snap);
      for (auto& shard : shards_) {
        if (shard->dead) continue;
        if (!shard->channel->Send(snap_frame)) {
          failed = shard->id;
          break;
        }
      }
      std::map<std::string, std::vector<uint8_t>> fresh;
      if (failed < 0) {
        for (auto& shard : shards_) {
          if (shard->dead) continue;
          net::SnapshotResultMsg result;
          if (!AwaitSnapshotResult(shard.get(), token, &result)) {
            failed = shard->id;
            break;
          }
          for (net::SessionBlob& blob : result.sessions) {
            fresh[blob.tenant] = std::move(blob.state);
          }
        }
      }
      if (failed < 0) {
        stash_ = std::move(fresh);
        journal_.clear();
      }
    }
    if (failed < 0) {
      if (totals != nullptr) *totals = sums;
      return true;
    }
    if (!HandleShardDown(failed)) return false;
  }
  error_ = "router: drain barrier did not converge";
  return false;
}

bool ShardRouter::MoveTenant(const std::string& tenant, int64_t target_shard) {
  Shard* target = FindShard(target_shard);
  if (target == nullptr || target->dead) {
    error_ = "router: move target shard " + std::to_string(target_shard) +
             " is not alive";
    return false;
  }
  const int64_t source_id = ShardOf(tenant);
  if (source_id < 0) return false;
  if (source_id == target_shard) {
    assignment_[tenant] = target_shard;
    return true;
  }
  Shard* source = FindShard(source_id);
  Metrics().moves->Increment();
  net::ExportStateMsg request;
  request.tenant = tenant;
  net::Frame response;
  if (source == nullptr || source->dead ||
      !Request(source, net::Encode(request), net::MsgType::kExportResult,
               &response)) {
    // Source died mid-export: its recovery re-places every one of its
    // tenants (including this one) from the stash; the move itself fails.
    if (source != nullptr && !HandleShardDown(source_id)) return false;
    error_ = "router: export from shard " + std::to_string(source_id) +
             " failed for " + tenant;
    return false;
  }
  net::ExportResultMsg exported;
  if (!net::Decode(response, &exported)) {
    Metrics().protocol_errors->Increment();
    return false;
  }
  assignment_[tenant] = target_shard;
  if (exported.found == 0) return true;  // nothing to carry; just repinned
  stash_[tenant] = exported.session.state;  // keep the recovery copy fresh
  net::ImportStateMsg import;
  import.session = std::move(exported.session);
  net::Frame import_response;
  net::ImportResultMsg result;
  if (!Request(target, net::Encode(import), net::MsgType::kImportResult,
               &import_response)) {
    // Target died holding the only live copy — which is fine: we just
    // refreshed the router stash, and recovery rehydrates from it.
    return HandleShardDown(target_shard);
  }
  if (!net::Decode(import_response, &result) || result.ok == 0) {
    Metrics().protocol_errors->Increment();
    error_ = "router: shard " + std::to_string(target_shard) +
             " rejected session import for " + tenant;
    return false;
  }
  return true;
}

void ShardRouter::CrashShard(int64_t shard_id) {
  Shard* shard = FindShard(shard_id);
  if (shard == nullptr || shard->dead) return;
  // Send first with recovery enabled (an injected transport fault on this
  // very frame is resent), then arm the expected close.
  if (shard->channel->Send(net::MakeControlFrame(net::MsgType::kCrash))) {
    shard->channel->ExpectClose();
  }
  HandleShardDown(shard_id);
}

std::vector<net::HealthResultMsg> ShardRouter::Health() {
  std::vector<net::HealthResultMsg> results;
  const net::Frame probe = net::Encode(net::HealthMsg{});
  std::vector<Shard*> probed;
  for (auto& shard : shards_) {
    if (shard->dead) continue;
    if (shard->channel->Send(probe)) probed.push_back(shard.get());
  }
  for (Shard* shard : probed) {
    net::Frame response;
    net::HealthResultMsg result;
    if (AwaitResponse(shard, net::MsgType::kHealthResult, &response) &&
        net::Decode(response, &result)) {
      results.push_back(result);
    }
  }
  return results;
}

std::string ShardRouter::MergedMetricsJson() {
  std::vector<std::string> snapshots;
  const net::Frame probe = net::Encode(net::MetricsMsg{});
  std::vector<Shard*> probed;
  for (auto& shard : shards_) {
    if (shard->dead) continue;
    if (shard->channel->Send(probe)) probed.push_back(shard.get());
  }
  for (Shard* shard : probed) {
    net::Frame response;
    net::MetricsResultMsg result;
    if (AwaitResponse(shard, net::MsgType::kMetricsResult, &response) &&
        net::Decode(response, &result)) {
      snapshots.push_back(std::move(result.json));
    }
  }
  snapshots.push_back(MetricsToJson());  // the router's own side
  return MergeMetricsJson(snapshots);
}

void ShardRouter::ShutdownAll() {
  if (shutdown_) return;
  shutdown_ = true;
  const net::Frame bye = net::MakeControlFrame(net::MsgType::kShutdown);
  for (auto& shard : shards_) {
    if (shard->dead) continue;
    // As in CrashShard: deliver with recovery enabled, then expect the EOF.
    if (shard->channel->Send(bye)) shard->channel->ExpectClose();
  }
  for (auto& shard : shards_) {
    if (shard->reader.joinable()) shard->reader.join();
    shard->channel->Close();
  }
}

}  // namespace serve
}  // namespace imdiff
