#include "serve/batcher.h"

#include <chrono>
#include <map>
#include <tuple>
#include <utility>

#include "utils/check.h"
#include "utils/fault.h"
#include "utils/metrics.h"

namespace imdiff {
namespace serve {

DetectionResult ScoreBlock(const ImDiffusionDetector& detector,
                           uint64_t session_seed,
                           const OnlineDetector::ReadyBlock& ready,
                           int degrade_level, Precision precision) {
  const BlockPlan plan = PlanBlock(detector, session_seed, ready);
  return detector.ReduceWindowScores(
      detector.ScoreWindowBatch(plan.windows.windows, plan.seeds,
                                degrade_level, precision),
      plan.windows.starts, plan.windows.length);
}

std::vector<DetectionResult> ScoreBlocks(std::vector<BlockRequest>* requests) {
  IMDIFF_CHECK(requests != nullptr);
  std::vector<DetectionResult> results(requests->size());
  if (requests->empty()) return results;
  IMDIFF_TRACE_SCOPE("serve.batch_score_seconds");

  // Group by (captured model version, degrade level, precision): a hot swap
  // between Submit and flush must not retarget an in-flight block, and one
  // batched reverse chain runs at one truncation depth and one precision.
  std::map<std::tuple<const ModelEntry*, int, int>, std::vector<size_t>>
      groups;
  for (size_t r = 0; r < requests->size(); ++r) {
    IMDIFF_CHECK((*requests)[r].model != nullptr);
    groups[{(*requests)[r].model.get(), (*requests)[r].degrade_level,
            static_cast<int>((*requests)[r].precision)}]
        .push_back(r);
  }

  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const auto& [key, members] : groups) {
    const ModelEntry* entry = std::get<0>(key);
    const int degrade_level = std::get<1>(key);
    const Precision precision = static_cast<Precision>(std::get<2>(key));
    const ImDiffusionDetector& detector = *entry->detector;
    const int64_t k = detector.config().model.num_features;
    const int64_t window = detector.config().model.window;
    const int64_t per_window = k * window;

    // Gather every cache-missed window across the group's blocks.
    std::vector<std::pair<size_t, size_t>> origin;  // (request, window index)
    std::vector<uint64_t> seeds;
    for (size_t r : members) {
      const BlockRequest& request = (*requests)[r];
      for (size_t i = 0; i < request.hit.size(); ++i) {
        if (request.hit[i]) continue;
        origin.emplace_back(r, i);
        seeds.push_back(request.plan.seeds[i]);
      }
    }

    if (!origin.empty()) {
      // One batched reverse-diffusion pass for the whole group.
      Tensor batch({static_cast<int64_t>(origin.size()), k, window});
      float* dst = batch.mutable_data();
      for (size_t m = 0; m < origin.size(); ++m) {
        const BlockRequest& request = (*requests)[origin[m].first];
        std::copy_n(request.plan.windows.windows.data() +
                        static_cast<int64_t>(origin[m].second) * per_window,
                    per_window, dst + static_cast<int64_t>(m) * per_window);
      }
      std::vector<ImDiffusionDetector::WindowScore> fresh =
          detector.ScoreWindowBatch(batch, seeds, degrade_level, precision);
      for (size_t m = 0; m < origin.size(); ++m) {
        (*requests)[origin[m].first].scores[origin[m].second] =
            std::move(fresh[m]);
      }
    }

    for (size_t r : members) {
      const BlockRequest& request = (*requests)[r];
      results[r] = detector.ReduceWindowScores(request.scores,
                                               request.plan.windows.starts,
                                               request.plan.windows.length);
    }

    registry.GetCounter("serve.batches")->Increment();
    registry.GetCounter("serve.batched_blocks")
        ->Increment(static_cast<int64_t>(members.size()));
    registry.GetCounter("serve.batched_windows")
        ->Increment(static_cast<int64_t>(origin.size()));
  }
  return results;
}

MicroBatcher::MicroBatcher(SessionManager* sessions, const Options& options,
                           Callback on_scored)
    : sessions_(sessions), options_(options), on_scored_(std::move(on_scored)) {
  IMDIFF_CHECK(sessions_ != nullptr);
  IMDIFF_CHECK_GT(options_.max_batch_windows, 0);
  flusher_ = std::thread(&MicroBatcher::FlusherLoop, this);
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

void MicroBatcher::Submit(BlockRequest request) {
  int64_t misses = 0;
  for (uint8_t h : request.hit) misses += h ? 0 : 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    IMDIFF_CHECK(!stop_) << "Submit after Shutdown";
    if (pending_.empty()) oldest_ = request.ready_time;
    pending_windows_ += misses;
    pending_.push_back(std::move(request));
  }
  cv_.notify_all();
  // Injected flush-timer misbehavior (batcher.flush_timeout): force an
  // immediate flush on the submitting thread, as if the window expired right
  // now. Bitwise-neutral for scores (batch composition is unobservable in
  // the output); checked here rather than in the flusher loop so that with a
  // single ingest worker the forced batch boundaries — and hence downstream
  // per-point fault call counts — are reproducible across chaos runs.
  if (IMDIFF_FAULT("batcher.flush_timeout")) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!pending_.empty()) {
      MetricsRegistry::Global().GetCounter("serve.flush_timeouts")->Increment();
      ScoreBatchLocked(lock);
    }
  }
}

void MicroBatcher::ScoreBatchLocked(std::unique_lock<std::mutex>& lock) {
  std::vector<BlockRequest> batch = std::move(pending_);
  pending_.clear();
  pending_windows_ = 0;
  ++scoring_;
  inflight_blocks_.fetch_add(static_cast<int64_t>(batch.size()),
                             std::memory_order_relaxed);
  lock.unlock();

  std::vector<DetectionResult> results = ScoreBlocks(&batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    sessions_->CompleteBlock(batch[i]);
    if (on_scored_) on_scored_(batch[i], results[i]);
    inflight_blocks_.fetch_sub(1, std::memory_order_relaxed);
  }

  lock.lock();
  --scoring_;
  cv_idle_.notify_all();
}

void MicroBatcher::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (pending_.empty()) {
      if (stop_) return;
      cv_.wait(lock);
      continue;
    }
    const auto deadline =
        oldest_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(options_.flush_window_seconds));
    if (stop_ || pending_windows_ >= options_.max_batch_windows ||
        std::chrono::steady_clock::now() >= deadline) {
      ScoreBatchLocked(lock);
      continue;
    }
    cv_.wait_until(lock, deadline);
  }
}

void MicroBatcher::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!pending_.empty() || scoring_ > 0) {
    if (!pending_.empty()) {
      ScoreBatchLocked(lock);
    } else {
      cv_idle_.wait(lock);
    }
  }
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

int64_t MicroBatcher::pending_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(pending_.size()) +
         inflight_blocks_.load(std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace imdiff
