// Shard worker: one process (or in-test thread) serving a StreamServer over
// a unix-domain socket (DESIGN.md §16).
//
// The worker is the passive side of the router <-> worker protocol
// (net/messages.h): it binds its socket, announces its shard id with a hello
// frame on every (re)connection, then runs a single-threaded dispatch loop
// over incoming frames. Samples are pushed into the StreamServer with a
// retry-until-accepted loop — the worker sheds nothing structurally; ingest
// backpressure surfaces as net.submit_retries, not as lost samples — and
// scored blocks flow back as fire-and-forget kScoredBlock frames from the
// batcher threads (ServerChannel::Send is thread-safe and queues across
// router reconnects).
//
// Determinism: the dispatch loop preserves the router's per-tenant FIFO
// order, and scoring itself is seeded per (tenant, stream position), so a
// worker's score stream is bitwise identical to the same tenants served by a
// single process (see serve/session_manager.h).

#ifndef IMDIFF_SERVE_WORKER_H_
#define IMDIFF_SERVE_WORKER_H_

#include <cstdint>
#include <string>

#include "core/imdiffusion.h"
#include "serve/server.h"

namespace imdiff {
namespace serve {

struct WorkerOptions {
  std::string socket_path;
  int64_t shard_id = 0;
  // Architecture template for kPublish: the published checkpoint is loaded
  // into a detector built from this config with the message's seed patched
  // in (the config must match the checkpoint's save-time shape).
  ImDiffusionConfig config;
  StreamServer::Options serve;
};

// Worker exit codes, so a spawning harness can tell a graceful kShutdown
// from a chaos kCrash from a startup failure.
inline constexpr int kWorkerExitOk = 0;
inline constexpr int kWorkerExitBindFailed = 1;
inline constexpr int kWorkerExitCrashed = 2;

// Binds `socket_path` and serves the dispatch loop until a kShutdown
// (graceful: drain, then exit 0) or kCrash (abandon all state immediately,
// exit 2 — in-flight blocks are deliberately lost; the router recovers them
// from its journal). Returns a kWorkerExit* code; runs equally as a process
// main or an in-test thread body.
int RunShardWorker(const WorkerOptions& options);

}  // namespace serve
}  // namespace imdiff

#endif  // IMDIFF_SERVE_WORKER_H_
