// Request front-end of the serving layer: bounded per-worker queues with
// backpressure, worker threads that drive SessionManager and the
// micro-batcher, and alert delivery.
//
// Tenants are sharded onto workers by a stable hash of the tenant name, so
// each tenant's samples are processed FIFO by exactly one worker — the
// ordering guarantee OnlineDetector's rolling buffer needs — while different
// tenants proceed in parallel. A full shard queue rejects the sample
// (Submit returns false, serve.requests_dropped counts it) instead of
// blocking the producer: load-shedding at ingest is the backpressure policy
// (DESIGN.md §11).

#ifndef IMDIFF_SERVE_SERVER_H_
#define IMDIFF_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/refresh.h"
#include "serve/session_manager.h"

namespace imdiff {

class Counter;     // utils/metrics.h
class Histogram;   // utils/metrics.h
class FaultPoint;  // utils/fault.h

namespace serve {

class StreamServer {
 public:
  struct Options {
    // Worker threads (= queue shards). Tenant order is preserved per shard.
    int num_workers = 2;
    // Per-shard queue capacity; a full queue rejects new samples.
    int64_t queue_capacity = 1024;
    // Per-block latency budget for the degradation ladder (DESIGN.md §13,
    // §17): when queue wait plus the predicted batched-scoring time (p90 of
    // serve.batch_score_seconds) exceeds this, the block is scored further
    // down the ladder instead of being shed — precision drops first
    // (fp32 -> bf16 -> int8), then the reverse chain is truncated
    // (int8 level 1, int8 level 2). <= 0 disables the policy (always full
    // quality); shedding at ingest (full shard queue) remains the last
    // resort either way.
    double deadline_seconds = 0.0;
    // >= 0 pins every block to that degradation level, bypassing both the
    // deadline policy and the chaos override. Replay/verification knob: two
    // runs that differ only in execution backend (e.g. IMDIFF_GRAPH=0 vs 1)
    // can be compared bitwise at a fixed level without coupling the level
    // choice to wall-clock cost estimates.
    int force_degrade_level = -1;
    // >= 0 pins every block to that scoring precision (a Precision value),
    // the same replay/verification knob for the precision axis: two seeded
    // runs at the same pinned precision produce bitwise-identical score
    // streams. Forcing either axis bypasses the deadline policy and the
    // chaos overrides for BOTH axes (the unforced axis keeps its default).
    int force_precision = -1;
    SessionManager::Options session;
    MicroBatcher::Options batch;
    // Continuous model refresh (DESIGN.md §18): background retraining on the
    // sessions' recent-sample window, shadow dual-scoring, drift-gated
    // auto-promotion. Inert unless refresh.enabled; requires
    // session.refresh_recent > 0 to have samples to fit on.
    RefreshOptions refresh;
  };

  // A scored block for one tenant.
  struct ScoredBlock {
    std::string tenant;
    int64_t block_index = 0;
    OnlineDetector::Alert alert;
    // Degradation level the block was scored at (0 = full reverse chain).
    int degrade_level = 0;
    // Precision the block was scored at (kF32 = full quality). Tagged
    // end-to-end so alert consumers can tell a degraded-precision score from
    // a full-quality one.
    Precision precision = Precision::kF32;
    // Ready-to-alert latency (batcher queueing + batched scoring) — the same
    // quantity serve.alert_latency_seconds records, surfaced per block so a
    // load generator can aggregate latency per tenant.
    double latency_seconds = 0.0;
    // Shadow dual-score result (continuous refresh, DESIGN.md §18): scored
    // against the staged candidate, delivered for observability only.
    // Consumers must not treat it as an alert; it is excluded from the
    // alert-latency metric and never forwarded across shard transports.
    bool shadow = false;
  };
  // Runs on a batcher/worker thread; must be thread-safe and non-blocking
  // (it sits on the scoring path).
  using AlertCallback = std::function<void(const ScoredBlock&)>;

  StreamServer(std::shared_ptr<const ModelEntry> model, const Options& options,
               AlertCallback on_alert);
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  // Enqueues one raw sample for `tenant`. Returns false (and counts
  // serve.requests_dropped) when the tenant's shard queue is full.
  bool Submit(const std::string& tenant, std::vector<float> sample);

  // Missing-aware variant: `observed` flags one entry per feature (empty =
  // fully observed) and rides to SessionManager::Append, which routes it
  // into the session's carry-forward fill (core/online_detector.h). The
  // value of a feature flagged missing is never read.
  bool Submit(const std::string& tenant, std::vector<float> sample,
              std::vector<uint8_t> observed);

  // Blocks until every enqueued sample has been processed and every ready
  // block has been scored and delivered. Callers must not Submit
  // concurrently with Drain.
  void Drain();

  // Drains, then stops workers and the batcher. Idempotent.
  void Shutdown();

  // Hot swap (registry publish): forwards to SessionManager::SwapModel and
  // resets the p90 cost estimate the degradation ladder reads
  // (serve.batch_score_seconds). Without the reset the histogram carries the
  // old model's timings across the publish, so a swap to a heavier model
  // under-degrades (and a fallback to a lighter one over-degrades) until the
  // window refills; an empty histogram instead takes the "no history yet"
  // optimistic branch and re-seeds from the new model's first batches.
  void SwapModel(std::shared_ptr<const ModelEntry> model);

  SessionManager& sessions() { return sessions_; }
  MicroBatcher& batcher() { return batcher_; }
  // Null unless Options::refresh.enabled.
  RefreshTrainer* refresh() { return refresh_.get(); }
  int64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Request {
    std::string tenant;
    std::vector<float> sample;
    std::vector<uint8_t> observed;  // empty = fully observed
    std::chrono::steady_clock::time_point enqueue{};
  };
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::condition_variable cv_idle;
    std::deque<Request> queue;
    bool busy = false;  // worker is processing a popped request
    bool stop = false;
    std::thread worker;
  };

  void WorkerLoop(Shard* shard);
  size_t ShardOf(const std::string& tenant) const;
  // One rung of the deadline-degradation ladder: how a block is scored.
  struct Rung {
    int degrade_level = 0;
    Precision precision = Precision::kF32;
  };
  // Ladder decision for one ready block. Wall-clock based when the deadline
  // policy is on; when the "serve.deadline" / "serve.precision" fault points
  // are armed, the corresponding axis instead derives deterministically from
  // the fault seed and the block's (session seed, block index) — chaos runs
  // need reproducible degradation placement.
  Rung ChooseRung(double queue_wait_seconds, const BlockRequest& block) const;

  const Options options_;
  // Registry handles resolved once at construction (registry lookups take a
  // lock; the worker loop is the ingest hot path).
  Histogram* batch_score_ = nullptr;       // serve.batch_score_seconds
  Counter* degraded_blocks_ = nullptr;     // serve.degraded_blocks
  Counter* precision_drops_ = nullptr;     // serve.precision_drops
  FaultPoint* deadline_fault_ = nullptr;   // "serve.deadline" injection point
  FaultPoint* precision_fault_ = nullptr;  // "serve.precision" injection point
  Counter* shadow_blocks_ = nullptr;       // serve.shadow_blocks
  SessionManager sessions_;
  MicroBatcher batcher_;
  // Declared after sessions_/batcher_ so it is destroyed first: the trainer
  // thread reads the session manager. Created in the constructor body, after
  // the batcher exists and before workers start.
  std::unique_ptr<RefreshTrainer> refresh_;
  AlertCallback on_alert_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> dropped_{0};
  bool shutdown_ = false;
};

}  // namespace serve
}  // namespace imdiff

#endif  // IMDIFF_SERVE_SERVER_H_
