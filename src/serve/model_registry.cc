#include "serve/model_registry.h"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "utils/check.h"
#include "utils/logging.h"
#include "utils/metrics.h"
#include "utils/rng.h"

namespace imdiff {
namespace serve {
namespace {

void SleepSeconds(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

// Jitter seed for a checkpoint path: deterministic per (fault seed, path), so
// replayed chaos runs sleep the same schedule.
uint64_t BackoffSeed(const std::string& path) {
  return MixSeed(FaultRegistry::Global().seed(),
                 HashBytes(path.data(), path.size()));
}

}  // namespace

int64_t ModelRegistry::Publish(
    const std::string& name,
    std::shared_ptr<const ImDiffusionDetector> detector,
    const MinMaxStats& stats) {
  IMDIFF_CHECK(detector != nullptr);
  IMDIFF_CHECK(detector->fitted()) << "cannot publish an unfitted model";
  IMDIFF_CHECK_EQ(stats.min.size(), stats.max.size());
  IMDIFF_CHECK(!stats.min.empty())
      << "published models need normalization statistics";
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  auto entry = std::make_shared<ModelEntry>();
  entry->name = name;
  entry->version = it == entries_.end() ? 1 : it->second->version + 1;
  entry->detector = std::move(detector);
  entry->stats = stats;
  entries_[name] = entry;
  MetricsRegistry::Global().GetCounter("serve.models_published")->Increment();
  return entry->version;
}

int64_t ModelRegistry::PublishFromFile(const std::string& name,
                                       const ImDiffusionConfig& config,
                                       const std::string& path,
                                       int64_t num_features,
                                       const MinMaxStats& stats,
                                       const BackoffPolicy& backoff) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const std::vector<double> delays = BackoffSchedule(backoff, BackoffSeed(path));
  for (int attempt = 0; attempt < backoff.max_attempts; ++attempt) {
    if (attempt > 0) {
      metrics.GetCounter("registry.load_retries")->Increment();
      SleepSeconds(delays[static_cast<size_t>(attempt - 1)]);
    }
    if (IMDIFF_FAULT("registry.load_io")) {
      IMDIFF_LOG(Warning) << "injected checkpoint load fault (attempt "
                          << attempt + 1 << "): " << path;
      continue;
    }
    auto detector = std::make_shared<ImDiffusionDetector>(config);
    if (detector->LoadModel(path, num_features)) {
      return Publish(name, std::move(detector), stats);
    }
  }
  // Every attempt failed: keep serving whatever was published before.
  auto previous = Acquire(name);
  if (previous != nullptr) {
    metrics.GetCounter("registry.load_fallbacks")->Increment();
    IMDIFF_LOG(Warning) << "checkpoint load failed after "
                        << backoff.max_attempts
                        << " attempts; still serving version "
                        << previous->version << " of " << name;
    return previous->version;
  }
  return -1;
}

bool SaveModelWithRetry(const ImDiffusionDetector& detector,
                        const std::string& path,
                        const BackoffPolicy& backoff) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const std::vector<double> delays = BackoffSchedule(backoff, BackoffSeed(path));
  for (int attempt = 0; attempt < backoff.max_attempts; ++attempt) {
    if (attempt > 0) {
      metrics.GetCounter("registry.save_retries")->Increment();
      SleepSeconds(delays[static_cast<size_t>(attempt - 1)]);
    }
    try {
      if (IMDIFF_FAULT("registry.save_io")) {
        throw std::runtime_error("injected registry.save_io fault");
      }
      detector.SaveModel(path);
      return true;
    } catch (const std::exception& e) {
      IMDIFF_LOG(Warning) << "checkpoint save attempt " << attempt + 1
                          << " failed: " << e.what();
    }
  }
  metrics.GetCounter("registry.save_failures")->Increment();
  return false;
}

int64_t ModelRegistry::PublishShadow(
    const std::string& name,
    std::shared_ptr<const ImDiffusionDetector> detector,
    const MinMaxStats& stats) {
  IMDIFF_CHECK(detector != nullptr);
  IMDIFF_CHECK(detector->fitted()) << "cannot stage an unfitted shadow";
  IMDIFF_CHECK_EQ(stats.min.size(), stats.max.size());
  IMDIFF_CHECK(!stats.min.empty())
      << "shadow models need normalization statistics";
  std::lock_guard<std::mutex> lock(mu_);
  auto live = entries_.find(name);
  IMDIFF_CHECK(live != entries_.end())
      << "no live version to shadow: " << name;
  auto entry = std::make_shared<ModelEntry>();
  entry->name = name;
  entry->version = live->second->version + 1;  // provisional
  entry->detector = std::move(detector);
  entry->stats = stats;
  shadows_[name] = entry;
  MetricsRegistry::Global().GetCounter("registry.shadows_staged")->Increment();
  return entry->version;
}

std::shared_ptr<const ModelEntry> ModelRegistry::AcquireShadow(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shadows_.find(name);
  return it == shadows_.end() ? nullptr : it->second;
}

std::shared_ptr<const ModelEntry> ModelRegistry::PromoteShadow(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto shadow = shadows_.find(name);
  if (shadow == shadows_.end()) return nullptr;
  auto live = entries_.find(name);
  IMDIFF_CHECK(live != entries_.end());
  // Entries are immutable once visible: build a fresh one with the version
  // assigned now, so an unrelated Publish between staging and promotion
  // cannot produce a duplicate number.
  auto entry = std::make_shared<ModelEntry>();
  entry->name = name;
  entry->version = live->second->version + 1;
  entry->detector = shadow->second->detector;
  entry->stats = shadow->second->stats;
  entries_[name] = entry;
  shadows_.erase(shadow);
  MetricsRegistry::Global().GetCounter("serve.models_published")->Increment();
  return entry;
}

void ModelRegistry::DropShadow(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  shadows_.erase(name);
}

std::shared_ptr<const ModelEntry> ModelRegistry::Acquire(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

int64_t ModelRegistry::latest_version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second->version;
}

}  // namespace serve
}  // namespace imdiff
