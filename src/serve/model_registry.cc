#include "serve/model_registry.h"

#include <utility>

#include "utils/check.h"
#include "utils/metrics.h"

namespace imdiff {
namespace serve {

int64_t ModelRegistry::Publish(
    const std::string& name,
    std::shared_ptr<const ImDiffusionDetector> detector,
    const MinMaxStats& stats) {
  IMDIFF_CHECK(detector != nullptr);
  IMDIFF_CHECK(detector->fitted()) << "cannot publish an unfitted model";
  IMDIFF_CHECK_EQ(stats.min.size(), stats.max.size());
  IMDIFF_CHECK(!stats.min.empty())
      << "published models need normalization statistics";
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  auto entry = std::make_shared<ModelEntry>();
  entry->name = name;
  entry->version = it == entries_.end() ? 1 : it->second->version + 1;
  entry->detector = std::move(detector);
  entry->stats = stats;
  entries_[name] = entry;
  MetricsRegistry::Global().GetCounter("serve.models_published")->Increment();
  return entry->version;
}

int64_t ModelRegistry::PublishFromFile(const std::string& name,
                                       const ImDiffusionConfig& config,
                                       const std::string& path,
                                       int64_t num_features,
                                       const MinMaxStats& stats) {
  auto detector = std::make_shared<ImDiffusionDetector>(config);
  if (!detector->LoadModel(path, num_features)) return -1;
  return Publish(name, std::move(detector), stats);
}

std::shared_ptr<const ModelEntry> ModelRegistry::Acquire(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

int64_t ModelRegistry::latest_version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second->version;
}

}  // namespace serve
}  // namespace imdiff
