#include "serve/server.h"

#include <utility>

#include "utils/check.h"
#include "utils/fault.h"
#include "utils/metrics.h"
#include "utils/rng.h"

namespace imdiff {
namespace serve {

StreamServer::StreamServer(std::shared_ptr<const ModelEntry> model,
                           const Options& options, AlertCallback on_alert)
    : options_(options),
      batch_score_(MetricsRegistry::Global().GetHistogram(
          "serve.batch_score_seconds")),
      degraded_blocks_(
          MetricsRegistry::Global().GetCounter("serve.degraded_blocks")),
      precision_drops_(
          MetricsRegistry::Global().GetCounter("serve.precision_drops")),
      deadline_fault_(FaultRegistry::Global().GetPoint("serve.deadline")),
      precision_fault_(FaultRegistry::Global().GetPoint("serve.precision")),
      sessions_(std::move(model), options.session),
      batcher_(&sessions_, options.batch,
               [this](const BlockRequest& request,
                      const DetectionResult& result) {
                 ScoredBlock scored;
                 scored.tenant = request.tenant;
                 scored.block_index = request.block_index;
                 scored.degrade_level = request.degrade_level;
                 scored.precision = request.precision;
                 scored.shadow = request.shadow;
                 scored.alert = OnlineDetector::MakeAlert(request.ready, result);
                 // Ready-to-alert latency: queueing at the batcher plus the
                 // batched scoring pass — the end-to-end cost the serving
                 // layer adds on top of raw inference.
                 scored.latency_seconds =
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - request.ready_time)
                         .count();
                 // Shadow blocks are observability traffic, not alerts: they
                 // must not skew the alert-latency distribution.
                 if (!scored.shadow) {
                   MetricsRegistry::Global()
                       .GetHistogram("serve.alert_latency_seconds")
                       ->Record(scored.latency_seconds);
                 }
                 if (refresh_) refresh_->OnScored(request, scored.alert);
                 if (on_alert_) on_alert_(scored);
               }),
      on_alert_(std::move(on_alert)) {
  IMDIFF_CHECK_GT(options_.num_workers, 0);
  IMDIFF_CHECK_GT(options_.queue_capacity, 0);
  shadow_blocks_ = MetricsRegistry::Global().GetCounter("serve.shadow_blocks");
  if (options_.refresh.enabled) {
    IMDIFF_CHECK_GT(options_.session.refresh_recent, 0)
        << "refresh enabled with no recent-sample capture";
    refresh_ = std::make_unique<RefreshTrainer>(this, options_.refresh);
  }
  shards_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread(&StreamServer::WorkerLoop, this, shard.get());
  }
}

StreamServer::~StreamServer() { Shutdown(); }

size_t StreamServer::ShardOf(const std::string& tenant) const {
  // Stable tenant → worker assignment keeps each tenant's samples FIFO.
  return static_cast<size_t>(HashBytes(tenant.data(), tenant.size()) %
                             static_cast<uint64_t>(shards_.size()));
}

bool StreamServer::Submit(const std::string& tenant,
                          std::vector<float> sample) {
  return Submit(tenant, std::move(sample), {});
}

bool StreamServer::Submit(const std::string& tenant, std::vector<float> sample,
                          std::vector<uint8_t> observed) {
  Shard& shard = *shards_[ShardOf(tenant)];
  MetricsRegistry& registry = MetricsRegistry::Global();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    IMDIFF_CHECK(!shard.stop) << "Submit after Shutdown";
    if (static_cast<int64_t>(shard.queue.size()) >= options_.queue_capacity) {
      // Backpressure: shed load at ingest rather than blocking producers or
      // growing the queue without bound.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      registry.GetCounter("serve.requests_dropped")->Increment();
      return false;
    }
    Request request;
    request.tenant = tenant;
    request.sample = std::move(sample);
    request.observed = std::move(observed);
    request.enqueue = std::chrono::steady_clock::now();
    shard.queue.push_back(std::move(request));
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  registry.GetCounter("serve.requests_accepted")->Increment();
  registry.GetGauge("serve.queue_depth")->Add(1.0);
  shard.cv.notify_one();
  return true;
}

void StreamServer::WorkerLoop(Shard* shard) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Gauge* const queue_depth = registry.GetGauge("serve.queue_depth");
  Histogram* const queue_wait =
      registry.GetHistogram("serve.queue_wait_seconds");
  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv.wait(lock,
                     [shard] { return shard->stop || !shard->queue.empty(); });
      if (shard->queue.empty()) return;  // stop && drained
      request = std::move(shard->queue.front());
      shard->queue.pop_front();
      shard->busy = true;
    }
    queue_depth->Add(-1.0);
    const double wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      request.enqueue)
            .count();
    queue_wait->Record(wait_seconds);

    BlockRequest block;
    if (sessions_.Append(request.tenant, request.sample, request.observed,
                         &block)) {
      const Rung rung = ChooseRung(wait_seconds, block);
      block.degrade_level = rung.degrade_level;
      block.precision = rung.precision;
      if (block.degrade_level > 0) degraded_blocks_->Increment();
      if (block.precision != Precision::kF32) precision_drops_->Increment();
      // Continuous refresh (DESIGN.md §18): while a shadow is staged, a
      // seeded fraction of full-quality blocks is dual-scored against it.
      // Degraded rungs are never selected — their live scores would not be
      // comparable to the shadow's full-quality ones.
      std::shared_ptr<const ModelEntry> shadow;
      if (refresh_ && rung.degrade_level == 0 &&
          rung.precision == Precision::kF32 &&
          refresh_->BeginShadowScore(block.session_seed, block.block_index,
                                     &shadow)) {
        BlockRequest dual;
        sessions_.DuplicateForShadow(block, std::move(shadow), &dual);
        shadow_blocks_->Increment();
        batcher_.Submit(std::move(block));
        batcher_.Submit(std::move(dual));
      } else {
        batcher_.Submit(std::move(block));
      }
    }
    // Cadence hook: counts the processed sample and, on a tick, runs the fit
    // synchronously with this worker blocked on the trainer thread — the
    // loop's decisions stay a pure function of the stream position.
    if (refresh_) refresh_->OnSample();

    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->busy = false;
    }
    shard->cv_idle.notify_all();
  }
}

StreamServer::Rung StreamServer::ChooseRung(double queue_wait_seconds,
                                            const BlockRequest& block) const {
  Rung rung;
  if (options_.force_degrade_level >= 0 || options_.force_precision >= 0) {
    if (options_.force_degrade_level >= 0) {
      rung.degrade_level = options_.force_degrade_level;
    }
    if (options_.force_precision >= 0) {
      rung.precision = static_cast<Precision>(options_.force_precision);
    }
    return rung;
  }
  // Chaos overrides: an armed "serve.deadline" / "serve.precision" point
  // decides its axis from (fault seed, session seed, block index) alone — no
  // wall clock — so two runs of the same stream degrade exactly the same
  // blocks. The precision key is re-mixed so the two points fire on
  // independent block subsets.
  if (FaultRegistry::Global().armed() &&
      (deadline_fault_->armed() || precision_fault_->armed())) {
    const uint64_t key = MixSeed(block.session_seed,
                                 static_cast<uint64_t>(block.block_index));
    if (deadline_fault_->armed() && deadline_fault_->FireKeyed(key)) {
      rung.degrade_level = 2;
    }
    if (precision_fault_->armed() &&
        precision_fault_->FireKeyed(MixSeed(key, /*stream=*/0x70726563))) {
      rung.precision = Precision::kInt8;
    }
    return rung;
  }
  if (options_.deadline_seconds <= 0.0) return rung;
  const double remaining = options_.deadline_seconds - queue_wait_seconds;
  // Budget already gone: score the cheapest rung rather than shed — a
  // degraded score still beats a missing one for anomaly detection.
  if (remaining <= 0.0) return Rung{2, Precision::kInt8};
  // Predict the batched scoring cost from observed history; with no history
  // yet, optimistically assume it fits. The ladder drops precision before it
  // truncates the chain (DESIGN.md §17): a reduced-precision GEMM costs
  // thousandths of F1, a truncated chain costs vote diversity. The rung
  // thresholds are conservative speedup credits (below the measured kernel
  // ratios — bench/BENCH_kernels.json) since only the GEMM share of a chunk
  // accelerates.
  const double predicted =
      batch_score_->count() > 0 ? batch_score_->Percentile(0.9) : 0.0;
  if (predicted <= remaining) return rung;
  const double over = predicted / remaining;
  if (over <= 1.25) return Rung{0, Precision::kBf16};
  if (over <= 1.75) return Rung{0, Precision::kInt8};
  if (over <= 3.0) return Rung{1, Precision::kInt8};
  return Rung{2, Precision::kInt8};
}

void StreamServer::SwapModel(std::shared_ptr<const ModelEntry> model) {
  sessions_.SwapModel(std::move(model));
  // The degradation ladder's cost predictor (p90 of this histogram) is only
  // meaningful for the model that produced the samples; start fresh.
  batch_score_->Reset();
}

void StreamServer::Drain() {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->cv_idle.wait(
        lock, [&shard] { return shard->queue.empty() && !shard->busy; });
  }
  batcher_.Flush();
  // Flush completes every block the workers handed over, and the workers
  // were idle before it started.
  IMDIFF_CHECK_EQ(sessions_.pending_blocks(), 0);
}

void StreamServer::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  Drain();
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stop = true;
    }
    shard->cv.notify_all();
    if (shard->worker.joinable()) shard->worker.join();
  }
  batcher_.Shutdown();
  // Workers and batcher are joined: no further fit can be requested.
  if (refresh_) refresh_->Shutdown();
}

}  // namespace serve
}  // namespace imdiff
