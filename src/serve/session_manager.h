// Multi-tenant streaming sessions over one shared fitted model.
//
// Each tenant owns an OnlineDetector (deferred mode: buffering only) whose
// ready blocks are planned here — windowed, seeded, and checked against the
// session's window-score cache — and scored externally by the cross-session
// micro-batcher (serve/batcher.h). Determinism is the load-bearing property:
// a window's score is a pure function of (window content, seed, model), with
// the seed derived from (tenant, global stream position) via MixSeed. That
// makes per-session score streams bitwise identical to a serial
// single-session replay no matter how windows are batched across tenants,
// and it makes cached scores bitwise interchangeable with recomputed ones.
//
// Eviction: sessions are LRU-evicted above `max_resident`; evicted streaming
// state (normalization, rolling buffer, counters) is stashed losslessly and
// rehydrated on the tenant's next sample, so an evicted tenant continues
// bitwise identically without refitting normalization. Sessions with blocks
// in flight (pending > 0) are never evicted — the batcher writes scores back
// through CompleteBlock.
//
// Memory: stashes and caches here hold plain std::vector copies plus
// refcounted Tensor storages. Tensor buffers come from the process-lifetime
// Arena (tensor/arena.h), which recycles a buffer only after its last
// reference drops and has no reset/epoch operation — so holding Tensors
// across evictions, rehydrations, and model swaps is safe by construction.

#ifndef IMDIFF_SERVE_SESSION_MANAGER_H_
#define IMDIFF_SERVE_SESSION_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/imdiffusion.h"
#include "core/online_detector.h"
#include "serve/model_registry.h"

namespace imdiff {
namespace serve {

// Deterministic, platform-independent per-tenant seed (FNV over the tenant
// name mixed with the deployment's base seed).
uint64_t TenantSeed(uint64_t seed_base, const std::string& tenant);

// Seed for the window whose first sample is at global stream position
// `global_start` of a session. Keying the seed by stream position (not by
// block ordinal) is what lets overlapping blocks reuse window scores: the
// same window content always gets the same noise.
uint64_t WindowSeed(uint64_t session_seed, int64_t global_start);

// Windowing + seeding plan for one ready block. Shared by the serving path
// and the serial replay baseline so both score identical chains.
struct BlockPlan {
  ImDiffusionDetector::WindowPlan windows;
  std::vector<uint64_t> seeds;      // per window
  // Global stream position of each window's first sample, used as the
  // window-score cache key; -1 marks a non-cacheable window (a front-padded
  // first block shorter than the model window, whose content is not a pure
  // slice of the stream).
  std::vector<int64_t> cache_keys;
};
BlockPlan PlanBlock(const ImDiffusionDetector& detector, uint64_t session_seed,
                    const OnlineDetector::ReadyBlock& ready);

// One block handed to the micro-batcher. `scores` is pre-filled from the
// session's cache where `hit[i]`; the batcher fills the misses, reduces, and
// returns the request through SessionManager::CompleteBlock.
struct BlockRequest {
  std::string tenant;
  int64_t block_index = 0;  // per-session ordinal, 0-based
  uint64_t session_seed = 0;
  OnlineDetector::ReadyBlock ready;
  BlockPlan plan;
  std::vector<ImDiffusionDetector::WindowScore> scores;
  std::vector<uint8_t> hit;
  std::chrono::steady_clock::time_point ready_time{};
  // Model version captured when the block became ready; a concurrent hot
  // swap does not retarget blocks already in flight.
  std::shared_ptr<const ModelEntry> model;
  // Degradation level chosen by the server's deadline policy (DESIGN.md §13):
  // 0 scores the full reverse chain; > 0 truncates it (see
  // ImDiffusionDetector::ChainStartForDegradeLevel). Degraded fresh scores
  // are delivered but never written back to the window-score cache.
  int degrade_level = 0;
  // Scoring precision chosen by the server's deadline ladder (DESIGN.md §17):
  // the ladder drops precision (fp32 -> bf16 -> int8) before it truncates the
  // chain. Like degraded scores, reduced-precision fresh scores are delivered
  // (tagged on the ScoredBlock) but never written back to the window-score
  // cache — cached entries are reused as full-quality scores.
  Precision precision = Precision::kF32;
  // Shadow dual-score request (continuous refresh, DESIGN.md §18): the block
  // is scored against the staged shadow model for drift statistics only.
  // Shadow results are tagged end-to-end, excluded from the alert stream,
  // and — like degraded and reduced-precision scores — never written back to
  // the window-score cache (the cache belongs to the live version).
  bool shadow = false;
};

// Cross-process session state (DESIGN.md §16): everything needed to continue
// a tenant bitwise-identically in another process that shares the same
// published model — the OnlineDetector streaming state (normalization,
// rolling buffer, stream counters, carry-forward fill) plus the per-session
// block ordinal. The window-score cache deliberately does NOT travel: cached
// scores are bitwise interchangeable with recomputed ones, so dropping the
// cache across a move costs recomputation, never correctness.
struct SessionSnapshot {
  OnlineDetector::State state;
  int64_t blocks = 0;
  // The tenant's sampled recent raw samples for refresh fits (oldest first);
  // travels with the session so resharding moves and crash recovery keep the
  // refresh window's content intact (DESIGN.md §18).
  std::vector<std::vector<float>> refresh_recent;
};

// Byte round-trip of a snapshot in the net wire format — what the shard
// transport ships for resharding moves and crash recovery. Deserialize
// returns false on truncated or corrupt input (never aborts).
std::vector<uint8_t> SerializeSession(const SessionSnapshot& snapshot);
bool DeserializeSession(const std::vector<uint8_t>& bytes,
                        SessionSnapshot* out);

class SessionManager {
 public:
  struct Options {
    OnlineDetector::Options online;
    // Resident-session cap; the least recently used idle session above the
    // cap is evicted (state stashed for lossless rehydration).
    int64_t max_resident = 64;
    // Deployment seed; per-tenant seeds derive from it.
    uint64_t seed_base = 1;
    // Reuse window scores across overlapping blocks (bitwise-neutral; saves
    // roughly half the model forwards when block == stride).
    bool cache_window_scores = true;
    // Stashed-state cap: above it the least recently evicted stash is
    // dropped (serve.stash_evictions counts the drops). A dropped tenant's
    // next sample starts a fresh session — stream positions and window
    // seeds reset, so scores continue but no longer match a never-evicted
    // replay. Under Zipf-scale tenant churn the stash is the only unbounded
    // state in the serving layer; this cap is what bounds resident memory.
    int64_t max_stashed = 1024;
    // Prune window-score cache entries no future block can reuse (a future
    // block's buffer never starts before total - context). Disabling keeps
    // every entry — the reference for the cache-prune property test, which
    // asserts the pruned run hits exactly as often as the unbounded one.
    bool prune_window_cache = true;
    // --- Continuous-refresh sample window (DESIGN.md §18) ----------------
    // Per-tenant cap of recent RAW samples retained for refresh fits
    // (sampled at ingest, oldest dropped first); 0 disables capture. Only
    // fully observed samples are retained — a partially observed sample's
    // raw values at missing features are garbage by contract.
    int64_t refresh_recent = 0;
    // Retention probability per eligible sample. The decision is a pure
    // function of (refresh_seed, session seed, tenant stream position), so
    // window membership is independent of worker interleaving.
    double refresh_sample_rate = 1.0;
    uint64_t refresh_seed = 0x52454652;  // "REFR"
  };

  SessionManager(std::shared_ptr<const ModelEntry> model,
                 const Options& options);

  // Appends one raw sample for `tenant`, creating or rehydrating the session
  // on first touch. Returns true when a block became ready and fills
  // `request` for the batcher; the session then counts as having a block in
  // flight until CompleteBlock. Thread-safe.
  bool Append(const std::string& tenant, const std::vector<float>& sample,
              BlockRequest* request);

  // Missing-aware variant: `observed` flags are forwarded to the session's
  // OnlineDetector (carry-forward fill; see core/online_detector.h). Empty
  // means fully observed.
  bool Append(const std::string& tenant, const std::vector<float>& sample,
              const std::vector<uint8_t>& observed, BlockRequest* request);

  // Batcher write-back: stores freshly computed window scores in the
  // session's cache and releases the in-flight hold.
  void CompleteBlock(const BlockRequest& request);

  // Clones a just-planned live block into a shadow dual-score request
  // against `shadow_model` (DESIGN.md §18): same windows, same seeds — so
  // live and shadow score distributions are comparable noise-for-noise —
  // but no cache prefill (the session cache holds live-version scores) and
  // the shadow tag set. Takes a second in-flight hold on the session; the
  // batcher releases it through CompleteBlock like any other block. `live`
  // must still be in flight (call between Append and the batcher Submit).
  void DuplicateForShadow(const BlockRequest& live,
                          std::shared_ptr<const ModelEntry> shadow_model,
                          BlockRequest* out);

  // Assembles the refresh fit corpus: one [rows, K] segment per tenant's
  // retained recent raw samples (resident and stashed), in tenant-name
  // order — a pure function of session state, independent of call timing.
  // Each segment is CONTIGUOUS within one tenant's stream; tenants with
  // fewer than `min_rows` retained samples are skipped (their snippets are
  // too short to cut a training window from, and concatenating them across
  // tenants would train on artificial discontinuities). Returns false when
  // no tenant qualifies.
  bool CollectRefreshSegments(int64_t min_rows,
                              std::vector<Tensor>* out) const;

  // Hot swap: blocks becoming ready after this call score against `model`;
  // blocks already in flight keep the version they captured. Session window
  // caches are invalidated (scores from different versions must not mix).
  void SwapModel(std::shared_ptr<const ModelEntry> model);
  std::shared_ptr<const ModelEntry> model() const;

  // Non-destructive copy of `tenant`'s streaming state, resident or stashed.
  // False when the tenant is unknown here or has a block in flight — callers
  // drain first (the router snapshots only at drain barriers).
  bool SnapshotSession(const std::string& tenant, SessionSnapshot* out) const;

  // Destructive export for a resharding move: on success the session (or
  // stash) is removed, so a stray later sample for the tenant would start a
  // fresh session. Same preconditions as SnapshotSession.
  bool ExportSession(const std::string& tenant, SessionSnapshot* out);

  // Injects a snapshot as stashed state; the tenant's next Append rehydrates
  // it through the existing eviction machinery, continuing bitwise
  // identically. Replaces any resident or stashed state for the tenant. The
  // stash cap still applies (the imported entry is newest, so an over-cap
  // drop takes the least recently evicted stash instead).
  void ImportSession(const std::string& tenant,
                     const SessionSnapshot& snapshot);

  // Every tenant with live state here (resident + stashed).
  std::vector<std::string> Tenants() const;

  int64_t resident_sessions() const;
  int64_t stashed_sessions() const;
  int64_t pending_blocks() const;
  // Window-score cache entries across every resident session.
  int64_t cached_window_scores() const;

  const Options& options() const { return options_; }

 private:
  struct Session {
    explicit Session(const OnlineDetector::Options& online_options)
        : online(nullptr, online_options) {}
    OnlineDetector online;
    uint64_t seed = 0;
    int64_t blocks = 0;   // blocks emitted so far
    uint64_t tick = 0;    // LRU stamp
    int pending = 0;      // blocks in flight at the batcher
    std::map<int64_t, ImDiffusionDetector::WindowScore> cache;
    // Sampled recent raw samples for refresh fits (oldest first, capped at
    // options.refresh_recent).
    std::deque<std::vector<float>> refresh_recent;
  };
  struct Stash {
    OnlineDetector::State state;
    int64_t blocks = 0;
    uint64_t tick = 0;  // eviction-order stamp for the stash cap's LRU drop
    std::deque<std::vector<float>> refresh_recent;
  };

  Session& GetOrCreateLocked(const std::string& tenant);
  // Evicts LRU idle sessions until `incoming` more fit under the resident
  // cap (or every candidate has a block in flight — then over-commit).
  void MaybeEvictLocked(int64_t incoming);

  mutable std::mutex mu_;
  std::shared_ptr<const ModelEntry> model_;
  const Options options_;
  uint64_t tick_ = 0;
  int64_t pending_total_ = 0;
  std::map<std::string, Session> sessions_;
  std::map<std::string, Stash> stash_;
};

}  // namespace serve
}  // namespace imdiff

#endif  // IMDIFF_SERVE_SESSION_MANAGER_H_
