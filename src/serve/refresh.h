// Continuous model refresh (DESIGN.md §18, ROADMAP item 2).
//
// A drifting tenant population slowly walks away from the distribution the
// live model was fitted on; without adaptation the detector degrades
// silently. The RefreshTrainer closes the loop:
//
//   Idle --(every refresh_every accepted samples)--> fit a candidate on the
//   registry-assembled sliding window of recent raw samples
//   (SessionManager::CollectRefreshWindow) --> stage it as the registry's
//   SHADOW version --> Shadowing: a seeded fraction of full-quality ready
//   blocks is dual-scored against the shadow (same windows, same seeds —
//   identical inference noise, so the two score distributions are
//   comparable) --> after verdict_pairs paired results, the drift verdict
//   resolves: promote (hot swap through StreamServer::SwapModel — session
//   caches cleared, cost predictor reset) or roll back (shadow dropped) -->
//   Idle.
//
// Verdict: promote when the live-vs-shadow score distributions have
// materially diverged (PSI >= psi_promote, or KS >= ks_promote) AND the
// shadow considers current traffic *less* anomalous than the live model
// (shadow mean <= mean_ratio_promote * live mean). Under real drift the live
// model scores drifted-but-normal traffic high while a candidate fitted on
// the recent window scores it low — both conditions hold. On a stationary
// stream the distributions match (PSI ~ 0) and nothing promotes; a degenerate
// candidate (bad fit) scores HIGHER than live and the mean-ratio guard
// rejects it even when PSI is large.
//
// Determinism: every decision in the loop — window membership, fit cadence,
// shadow block selection, verdict inputs — is a pure function of (stream
// content, refresh seed, cadence config). With one ingest worker and
// drain-point-only batcher flushes, two replays of the same stream make
// bitwise-identical promotion decisions; the refresh-drift CI job cmp's the
// event logs.
//
// Fault points (failure matrix in DESIGN.md §18):
//   refresh.fit          candidate fit aborted -> keep serving the live
//                        version; the sample window is retained and the next
//                        cadence tick retries.
//   refresh.promote      promotion aborted after a positive verdict -> the
//                        shadow is dropped, the live version and its
//                        checkpoint stay intact.
//   refresh.shadow_score crash mid-shadow-round -> the shadow and all
//                        accumulated drift state are discarded cleanly;
//                        serving never sees the candidate.

#ifndef IMDIFF_SERVE_REFRESH_H_
#define IMDIFF_SERVE_REFRESH_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "metrics/drift.h"
#include "serve/model_registry.h"
#include "serve/session_manager.h"

namespace imdiff {
namespace serve {

class StreamServer;

struct RefreshOptions {
  // Master switch; everything below is inert when false.
  bool enabled = false;
  // Registry holding the live version and staging shadows; must outlive the
  // server. `model_name` is the published name the server serves.
  ModelRegistry* registry = nullptr;
  std::string model_name;
  // Seed for shadow block selection (mixed with session seed + block index).
  uint64_t seed = 0x72656672;  // "refr"
  // Accepted samples between fit attempts; <= 0 never triggers.
  int64_t refresh_every = 5000;
  // Extra floor on collected window rows before a fit is attempted (the
  // model window is always required).
  int64_t min_window = 0;
  // Training epochs for the candidate fit; <= 0 inherits the live model's
  // config. Refresh windows are much smaller than the original training set,
  // so more passes over them cost little and fit the recent regime better.
  int fit_epochs = 0;
  // Training-window stride for the candidate fit; <= 0 inherits the live
  // model's config. The refresh corpus is a few hundred rows per tenant, so
  // the default cuts windows densely — with a sparse stride the candidate
  // sees too few windows to converge and every verdict degenerates to a
  // rollback of an undertrained model.
  int64_t fit_stride = 1;
  // Fraction of full-quality ready blocks dual-scored while shadowing.
  // Degraded / reduced-precision blocks are never selected: their live
  // scores would not be comparable to the shadow's full-quality ones.
  double shadow_fraction = 0.25;
  // Paired live/shadow blocks required before the verdict resolves.
  int64_t verdict_pairs = 12;
  // Drift verdict thresholds (see file comment).
  double psi_promote = 0.25;
  double ks_promote = 0.5;
  double mean_ratio_promote = 0.8;
  // Rank-error budget of the score-distribution sketches.
  double sketch_epsilon = 0.01;
  // When set, a promoted candidate is checkpointed here (crash-safe,
  // bounded retry) BEFORE the registry swap; a failed save aborts the
  // promotion with the previous checkpoint intact.
  std::string checkpoint_path;
  BackoffPolicy save_backoff;
};

class RefreshTrainer {
 public:
  // One resolved transition of the refresh state machine. The ordered event
  // log is the promotion record the CI drift job compares bitwise across
  // replays (serve_replay dumps it in hex).
  struct Event {
    enum class Kind {
      kFitSkipped,     // window shorter than the model window
      kFitFailed,      // refresh.fit fired (or the fit threw)
      kShadowStaged,   // candidate fitted and staged
      kShadowAborted,  // refresh.shadow_score fired mid-round
      kPromoted,       // verdict: shadow wins; hot-swapped into serving
      kPromoteFailed,  // refresh.promote / checkpoint save failed; rolled back
      kRolledBack,     // verdict: live wins; shadow dropped
    };
    Kind kind = Kind::kFitSkipped;
    int64_t fit_ordinal = 0;   // 1-based fit attempt
    int64_t at_sample = 0;     // accepted samples processed at resolution
    int64_t live_version = 0;  // live version when the event resolved
    int64_t shadow_version = 0;
    // Verdict inputs (kPromoted / kPromoteFailed / kRolledBack only).
    double psi = 0.0;
    double ks = 0.0;
    double agreement = 0.0;
    double live_mean = 0.0;
    double shadow_mean = 0.0;
  };
  static const char* KindName(Event::Kind kind);

  // `server` owns this trainer and must outlive it.
  RefreshTrainer(StreamServer* server, const RefreshOptions& options);
  ~RefreshTrainer();

  RefreshTrainer(const RefreshTrainer&) = delete;
  RefreshTrainer& operator=(const RefreshTrainer&) = delete;

  // Ingest-worker hook, once per processed sample: advances the cadence
  // counter and, on a tick with no shadow in flight, runs the fit (on the
  // trainer thread; the caller joins the result so the loop stays a pure
  // function of the stream — see DESIGN.md §18).
  void OnSample();

  // Ingest-worker hook for a freshly planned full-quality block: true when
  // the block was selected for shadow dual-scoring (the expected pair is
  // registered and `*shadow_model` set). Selection is a pure function of
  // (refresh seed, session seed, block index). An armed refresh.shadow_score
  // point can instead abort the whole shadow round here.
  bool BeginShadowScore(uint64_t session_seed, int64_t block_index,
                        std::shared_ptr<const ModelEntry>* shadow_model);

  // Completion hook, called for every scored block (live and shadow). Feeds
  // the drift accumulators for selected pairs and resolves the verdict once
  // enough pairs completed.
  void OnScored(const BlockRequest& request,
                const OnlineDetector::Alert& alert);

  // Stops the trainer thread. Idempotent; called by the destructor.
  void Shutdown();

  bool shadow_active() const;
  std::vector<Event> events() const;
  const RefreshOptions& options() const { return options_; }

 private:
  // kResolving covers every busy transition — a fit in flight as well as a
  // verdict resolving — during which no new trigger or shadow selection is
  // accepted.
  enum class State { kIdle, kShadowing, kResolving };
  struct PairSlot {
    bool live_done = false;
    bool shadow_done = false;
    bool live_alert = false;
    bool shadow_alert = false;
    std::vector<float> live_scores;
    std::vector<float> shadow_scores;
  };
  struct FitResult {
    std::shared_ptr<ImDiffusionDetector> detector;
    MinMaxStats stats;
    bool ok = false;
  };

  // Runs one fit attempt end to end (collect -> fit on the trainer thread ->
  // stage shadow). Called from OnSample with no locks held.
  void RunFitAttempt(int64_t ordinal);
  // Hands the per-tenant segments to the trainer thread and blocks for the
  // result.
  FitResult FitOnTrainerThread(std::vector<Tensor> segments, int64_t ordinal);
  void TrainerLoop();
  // Drops the shadow and every accumulator; records `kind`. Caller holds mu_.
  void AbortShadowLocked(Event::Kind kind, int64_t shadow_version);
  // Computes the verdict and promotes or rolls back. Caller holds `lock`.
  void ResolveVerdict(std::unique_lock<std::mutex>& lock);
  void AppendEventLocked(Event event);
  int64_t LiveVersionLocked() const;

  StreamServer* const server_;
  const RefreshOptions options_;

  mutable std::mutex mu_;
  State state_ = State::kIdle;
  int64_t samples_ = 0;      // accepted samples processed
  int64_t fit_ordinal_ = 0;  // fit attempts started
  std::shared_ptr<const ModelEntry> shadow_model_;
  std::map<std::pair<uint64_t, int64_t>, PairSlot> pairs_;
  int64_t pairs_done_ = 0;
  QuantileSketch live_sketch_;
  QuantileSketch shadow_sketch_;
  AlertAgreement agreement_;
  std::vector<Event> events_;

  // Trainer thread: one fit job at a time, caller blocks for completion.
  std::mutex fit_mu_;
  std::condition_variable fit_cv_;
  bool fit_pending_ = false;
  bool fit_done_ = false;
  bool fit_stop_ = false;
  std::vector<Tensor> fit_segments_;
  int64_t fit_job_ordinal_ = 0;
  FitResult fit_result_;
  std::thread trainer_;
};

}  // namespace serve
}  // namespace imdiff

#endif  // IMDIFF_SERVE_REFRESH_H_
