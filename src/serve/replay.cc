#include "serve/replay.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "metrics/add.h"
#include "metrics/classification.h"
#include "metrics/range_auc.h"
#include "serve/batcher.h"
#include "utils/check.h"
#include "utils/metrics.h"
#include "utils/stopwatch.h"

namespace imdiff {
namespace serve {

std::vector<float> ReplaySerial(const ModelEntry& model,
                                const OnlineDetector::Options& online_options,
                                uint64_t seed_base,
                                const TenantStream& stream,
                                int degrade_level) {
  IMDIFF_CHECK(model.detector != nullptr && model.detector->fitted());
  OnlineDetector online(nullptr, online_options);
  online.SetNormalization(model.stats);
  const uint64_t session_seed = TenantSeed(seed_base, stream.tenant);
  const int64_t length = stream.samples.dim(0);
  const int64_t k = stream.samples.dim(1);
  std::vector<float> scores(static_cast<size_t>(length), 0.0f);
  std::vector<float> sample(static_cast<size_t>(k));
  for (int64_t l = 0; l < length; ++l) {
    std::copy_n(stream.samples.data() + l * k, k, sample.begin());
    OnlineDetector::ReadyBlock ready;
    if (!online.AppendBuffered(sample, &ready)) continue;
    const DetectionResult result =
        ScoreBlock(*model.detector, session_seed, ready, degrade_level);
    const OnlineDetector::Alert alert =
        OnlineDetector::MakeAlert(ready, result);
    for (size_t i = 0; i < alert.scores.size(); ++i) {
      const int64_t pos = alert.start + static_cast<int64_t>(i);
      if (pos < length) scores[static_cast<size_t>(pos)] = alert.scores[i];
    }
  }
  return scores;
}

ReplayStats ReplayThroughServer(std::shared_ptr<const ModelEntry> model,
                                const std::vector<TenantStream>& streams,
                                const StreamServer::Options& options,
                                bool paced) {
  IMDIFF_CHECK(!streams.empty());
  const int64_t k = streams.front().samples.dim(1);
  int64_t max_length = 0;
  int64_t total_samples = 0;
  ReplayStats stats;
  for (const TenantStream& stream : streams) {
    IMDIFF_CHECK_EQ(stream.samples.dim(1), k);
    max_length = std::max(max_length, stream.samples.dim(0));
    total_samples += stream.samples.dim(0);
    stats.scores[stream.tenant] = std::vector<float>(
        static_cast<size_t>(stream.samples.dim(0)), 0.0f);
  }

  std::mutex mu;
  auto on_alert = [&](const StreamServer::ScoredBlock& scored) {
    std::lock_guard<std::mutex> lock(mu);
    ++stats.alerts;
    if (scored.degrade_level > 0) ++stats.degraded_alerts;
    auto it = stats.scores.find(scored.tenant);
    IMDIFF_CHECK(it != stats.scores.end());
    std::vector<float>& out = it->second;
    for (size_t i = 0; i < scored.alert.scores.size(); ++i) {
      const int64_t pos =
          scored.alert.start + static_cast<int64_t>(i);
      if (pos < static_cast<int64_t>(out.size())) {
        out[static_cast<size_t>(pos)] = scored.alert.scores[i];
      }
    }
  };

  StreamServer server(std::move(model), options, on_alert);
  Stopwatch timer;
  std::vector<float> sample(static_cast<size_t>(k));
  // Round-robin interleaving: sample l of every tenant before sample l + 1
  // of any — the arrival pattern that exercises cross-session batching.
  for (int64_t l = 0; l < max_length; ++l) {
    for (const TenantStream& stream : streams) {
      if (l >= stream.samples.dim(0)) continue;
      std::copy_n(stream.samples.data() + l * k, k, sample.begin());
      ++stats.submitted;
      while (!server.Submit(stream.tenant, sample)) {
        // The replay source is lossless: back off and retry so the score
        // streams stay complete (a live ingest would shed the sample).
        ++stats.rejected;
        std::this_thread::yield();
      }
    }
    // Block cadence: every tenant's block fills in the same round, the
    // batcher scores them in one cross-tenant pass, and the scores are
    // cached before the next overlapping block is planned.
    if (paced && (l + 1) % options.session.online.block == 0) {
      server.Drain();
    }
  }
  server.Drain();
  stats.seconds = timer.ElapsedSeconds();
  stats.points_per_second =
      stats.seconds > 0.0 ? static_cast<double>(total_samples) / stats.seconds
                          : 0.0;
  server.Shutdown();
  return stats;
}

double ServedDetectionDelay(const std::vector<uint8_t>& labels,
                            const std::vector<uint8_t>& predictions,
                            int64_t block) {
  IMDIFF_CHECK_EQ(labels.size(), predictions.size());
  IMDIFF_CHECK_GT(block, 0);
  const int64_t n = static_cast<int64_t>(labels.size());
  const auto segments = FindSegments(labels);
  if (segments.empty()) return 0.0;
  double total = 0.0;
  for (const AnomalySegment& seg : segments) {
    int64_t delay = n - seg.start;  // penalty when never detected
    for (int64_t t = seg.start; t < n; ++t) {
      if (predictions[static_cast<size_t>(t)] != 0) {
        // The alarm becomes observable when t's block is emitted, i.e. at
        // the block's last index (a trailing partial block is clamped to
        // the stream end — it would never be emitted, so the penalty above
        // is the honest bound, matched by the clamp).
        const int64_t emitted = std::min(n - 1, (t / block + 1) * block - 1);
        delay = emitted - seg.start;
        break;
      }
    }
    total += static_cast<double>(delay);
  }
  return total / static_cast<double>(segments.size());
}

RunMetrics EvaluateServed(const MtsDataset& dataset, uint64_t seed,
                          SpeedProfile profile,
                          const StreamServer::Options& options) {
  ImDiffusionConfig config = profile == SpeedProfile::kPaper
                                 ? PaperImDiffusionConfig()
                                 : FastImDiffusionConfig();
  config.seed = seed;
  auto detector = std::make_shared<ImDiffusionDetector>(config);

  RunMetrics metrics;
  const MinMaxStats stats = FitMinMax(dataset.train);
  Stopwatch fit_timer;
  detector->Fit(ApplyMinMax(dataset.train, stats));
  metrics.fit_seconds = fit_timer.ElapsedSeconds();

  auto entry = std::make_shared<ModelEntry>();
  entry->name = dataset.name.empty() ? "production" : dataset.name;
  entry->version = 1;
  entry->detector = detector;
  entry->stats = stats;

  StreamServer::Options served = options;
  served.session.seed_base = seed;
  TenantStream stream;
  stream.tenant = "production";
  stream.samples = dataset.test;
  const ReplayStats replay =
      ReplayThroughServer(entry, {std::move(stream)}, served);
  metrics.score_seconds = replay.seconds;
  metrics.points_per_second = replay.points_per_second;

  const std::vector<float>& scores = replay.scores.at("production");
  BinaryMetrics best;
  const float threshold =
      BestF1Threshold(scores, dataset.test_labels, 64, &best);
  metrics.precision = best.precision;
  metrics.recall = best.recall;
  metrics.f1 = best.f1;
  metrics.r_auc_pr = RangeAucPr(scores, dataset.test_labels);
  metrics.r_auc_roc = RangeAucRoc(scores, dataset.test_labels);
  metrics.add = ServedDetectionDelay(dataset.test_labels,
                                     ThresholdScores(scores, threshold),
                                     served.session.online.block);
  return metrics;
}

AggregateMetrics EvaluateServedManySeeds(const MtsDataset& dataset,
                                         int num_seeds, SpeedProfile profile,
                                         const StreamServer::Options& options) {
  IMDIFF_CHECK_GE(num_seeds, 1);
  std::vector<RunMetrics> runs;
  runs.reserve(static_cast<size_t>(num_seeds));
  // Serial over seeds: each run owns the server's worker threads, and the
  // compute pool is already saturated by the batched scoring passes.
  for (int s = 0; s < num_seeds; ++s) {
    runs.push_back(EvaluateServed(
        dataset, 1000 + 17 * static_cast<uint64_t>(s), profile, options));
  }
  AggregateMetrics agg;
  agg.num_runs = num_seeds;
  for (const RunMetrics& r : runs) {
    agg.precision += r.precision;
    agg.recall += r.recall;
    agg.f1 += r.f1;
    agg.r_auc_pr += r.r_auc_pr;
    agg.add += r.add;
    agg.points_per_second += r.points_per_second;
  }
  const double n = static_cast<double>(num_seeds);
  agg.precision /= n;
  agg.recall /= n;
  agg.f1 /= n;
  agg.r_auc_pr /= n;
  agg.add /= n;
  agg.points_per_second /= n;
  double f1_var = 0.0;
  double add_var = 0.0;
  for (const RunMetrics& r : runs) {
    f1_var += (r.f1 - agg.f1) * (r.f1 - agg.f1);
    add_var += (r.add - agg.add) * (r.add - agg.add);
  }
  if (num_seeds > 1) {
    agg.f1_std = std::sqrt(f1_var / (n - 1.0));
    agg.add_std = std::sqrt(add_var / (n - 1.0));
  }
  return agg;
}

}  // namespace serve
}  // namespace imdiff
