#include "serve/replay.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include <cstring>

#include "metrics/add.h"
#include "metrics/classification.h"
#include "metrics/range_auc.h"
#include "serve/batcher.h"
#include "serve/router.h"
#include "utils/check.h"
#include "utils/fault.h"
#include "utils/metrics.h"
#include "utils/rng.h"
#include "utils/stopwatch.h"

namespace imdiff {
namespace serve {

std::vector<float> ReplaySerial(const ModelEntry& model,
                                const OnlineDetector::Options& online_options,
                                uint64_t seed_base,
                                const TenantStream& stream,
                                int degrade_level, Precision precision) {
  IMDIFF_CHECK(model.detector != nullptr && model.detector->fitted());
  OnlineDetector online(nullptr, online_options);
  online.SetNormalization(model.stats);
  const uint64_t session_seed = TenantSeed(seed_base, stream.tenant);
  const int64_t length = stream.samples.dim(0);
  const int64_t k = stream.samples.dim(1);
  if (!stream.observed.empty()) {
    IMDIFF_CHECK_EQ(static_cast<int64_t>(stream.observed.size()), length * k);
  }
  std::vector<float> scores(static_cast<size_t>(length), 0.0f);
  std::vector<float> sample(static_cast<size_t>(k));
  std::vector<uint8_t> observed;
  for (int64_t l = 0; l < length; ++l) {
    std::copy_n(stream.samples.data() + l * k, k, sample.begin());
    if (!stream.observed.empty()) {
      observed.assign(stream.observed.begin() + l * k,
                      stream.observed.begin() + (l + 1) * k);
    }
    OnlineDetector::ReadyBlock ready;
    if (!online.AppendBuffered(sample, observed, &ready)) continue;
    const DetectionResult result = ScoreBlock(*model.detector, session_seed,
                                              ready, degrade_level, precision);
    const OnlineDetector::Alert alert =
        OnlineDetector::MakeAlert(ready, result);
    for (size_t i = 0; i < alert.scores.size(); ++i) {
      const int64_t pos = alert.start + static_cast<int64_t>(i);
      if (pos < length) scores[static_cast<size_t>(pos)] = alert.scores[i];
    }
  }
  return scores;
}

ReplayStats ReplayThroughServer(std::shared_ptr<const ModelEntry> model,
                                const std::vector<TenantStream>& streams,
                                const StreamServer::Options& options,
                                bool paced) {
  IMDIFF_CHECK(!streams.empty());
  const int64_t k = streams.front().samples.dim(1);
  int64_t max_length = 0;
  int64_t total_samples = 0;
  ReplayStats stats;
  for (const TenantStream& stream : streams) {
    IMDIFF_CHECK_EQ(stream.samples.dim(1), k);
    max_length = std::max(max_length, stream.samples.dim(0));
    total_samples += stream.samples.dim(0);
    stats.scores[stream.tenant] = std::vector<float>(
        static_cast<size_t>(stream.samples.dim(0)), 0.0f);
  }

  std::mutex mu;
  auto on_alert = [&](const StreamServer::ScoredBlock& scored) {
    if (scored.shadow) return;  // drift statistics, not alerts
    std::lock_guard<std::mutex> lock(mu);
    ++stats.alerts;
    if (scored.degrade_level > 0) ++stats.degraded_alerts;
    if (scored.precision != Precision::kF32) ++stats.precision_dropped_alerts;
    auto it = stats.scores.find(scored.tenant);
    IMDIFF_CHECK(it != stats.scores.end());
    std::vector<float>& out = it->second;
    for (size_t i = 0; i < scored.alert.scores.size(); ++i) {
      const int64_t pos =
          scored.alert.start + static_cast<int64_t>(i);
      if (pos < static_cast<int64_t>(out.size())) {
        out[static_cast<size_t>(pos)] = scored.alert.scores[i];
      }
    }
  };

  StreamServer server(std::move(model), options, on_alert);
  Stopwatch timer;
  std::vector<float> sample(static_cast<size_t>(k));
  // Round-robin interleaving: sample l of every tenant before sample l + 1
  // of any — the arrival pattern that exercises cross-session batching.
  std::vector<uint8_t> observed;
  for (int64_t l = 0; l < max_length; ++l) {
    for (const TenantStream& stream : streams) {
      if (l >= stream.samples.dim(0)) continue;
      std::copy_n(stream.samples.data() + l * k, k, sample.begin());
      observed.clear();
      if (!stream.observed.empty()) {
        observed.assign(stream.observed.begin() + l * k,
                        stream.observed.begin() + (l + 1) * k);
      }
      ++stats.submitted;
      while (!server.Submit(stream.tenant, sample, observed)) {
        // The replay source is lossless: back off and retry so the score
        // streams stay complete (a live ingest would shed the sample).
        ++stats.rejected;
        std::this_thread::yield();
      }
    }
    // Block cadence: every tenant's block fills in the same round, the
    // batcher scores them in one cross-tenant pass, and the scores are
    // cached before the next overlapping block is planned.
    if (paced && (l + 1) % options.session.online.block == 0) {
      server.Drain();
    }
  }
  server.Drain();
  stats.seconds = timer.ElapsedSeconds();
  stats.points_per_second =
      stats.seconds > 0.0 ? static_cast<double>(total_samples) / stats.seconds
                          : 0.0;
  server.Shutdown();
  return stats;
}

namespace {

// Nearest-rank percentile of an ascending-sorted vector; 0 when empty.
double SortedPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto idx = static_cast<size_t>(q * (n - 1.0) + 0.5);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

LoadStats::Spread SpreadOf(std::vector<double> values) {
  LoadStats::Spread spread;
  if (values.empty()) return spread;
  std::sort(values.begin(), values.end());
  spread.p50 = SortedPercentile(values, 0.5);
  spread.p90 = SortedPercentile(values, 0.9);
  spread.p99 = SortedPercentile(values, 0.99);
  spread.max = values.back();
  return spread;
}

}  // namespace

std::string LoadTenantName(int64_t tenant) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "tenant-%06lld",
                static_cast<long long>(tenant));
  return std::string(buffer);
}

LoadPlan BuildLoadPlan(const LoadConfig& config, int64_t num_features) {
  IMDIFF_CHECK_GT(config.num_tenants, 0);
  IMDIFF_CHECK_GT(config.total_samples, 0);
  IMDIFF_CHECK_GT(config.zipf_exponent, 0.0);
  IMDIFF_CHECK_GT(config.burst_min, 0);
  LoadPlan plan;

  // Zipf CDF over tenant ranks: rank r with weight 1 / (r + 1)^s. Tenant 0
  // is the head; the tail ranks share the remaining mass.
  std::vector<double> cdf(static_cast<size_t>(config.num_tenants));
  double mass = 0.0;
  for (int64_t r = 0; r < config.num_tenants; ++r) {
    mass += std::pow(static_cast<double>(r + 1), -config.zipf_exponent);
    cdf[static_cast<size_t>(r)] = mass;
  }
  for (double& c : cdf) c /= mass;

  // Deterministic schedule: (tenant, burst length) pairs drawn until the
  // sample budget is spent. The schedule — not wall-clock arrival — defines
  // the run, so two same-seed runs replay identical traffic.
  Rng sched_rng(MixSeed(config.seed, 0x7a697066ull));  // "zipf"
  std::vector<int64_t> per_tenant(static_cast<size_t>(config.num_tenants), 0);
  int64_t remaining = config.total_samples;
  while (remaining > 0) {
    const double u = sched_rng.Uniform(0.0, 1.0);
    const int64_t tenant = static_cast<int64_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const int64_t length =
        SampleHeavyTail(sched_rng, std::min(config.burst_min, remaining),
                        config.burst_tail, remaining);
    plan.schedule.push_back({tenant, length});
    per_tenant[static_cast<size_t>(tenant)] += length;
    remaining -= length;
  }

  // Generate each active tenant's ugly stream at exactly its scheduled
  // length. Tenant seeds derive from (config seed, tenant rank), so the
  // stream content is independent of the schedule draw order.
  plan.any_missing =
      config.stream.missing_rate > 0.0 || config.stream.gap_rate > 0.0;
  for (int64_t t = 0; t < config.num_tenants; ++t) {
    const int64_t length = per_tenant[static_cast<size_t>(t)];
    if (length == 0) continue;
    UglyStreamConfig sc = config.stream;
    sc.length = length;
    sc.dims = num_features;
    plan.streams.emplace(
        t, MakeUglyStream(MixSeed(config.seed, static_cast<uint64_t>(t) + 1),
                          sc));
    ++plan.tenants;
  }
  return plan;
}

LoadStats ReplayLoad(std::shared_ptr<const ModelEntry> model,
                     const LoadConfig& config,
                     const StreamServer::Options& options) {
  IMDIFF_CHECK(model != nullptr && model->detector != nullptr);
  const int64_t k = model->detector->config().model.num_features;
  LoadPlan plan = BuildLoadPlan(config, k);
  const std::vector<LoadPlan::Burst>& schedule = plan.schedule;
  const std::map<int64_t, UglyStream>& streams = plan.streams;
  const bool any_missing = plan.any_missing;
  LoadStats stats;
  stats.tenants = plan.tenants;

  auto tenant_name = [](int64_t t) { return LoadTenantName(t); };

  // Counter baselines: report this run's churn, not the process's.
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* const hits = registry.GetCounter("serve.cache_hits");
  Counter* const misses = registry.GetCounter("serve.cache_misses");
  Counter* const evicted = registry.GetCounter("serve.sessions_evicted");
  Counter* const rehydrated = registry.GetCounter("serve.sessions_rehydrated");
  Counter* const rehydrate_failures =
      registry.GetCounter("serve.rehydrate_failures");
  Counter* const stash_evictions =
      registry.GetCounter("serve.stash_evictions");
  Counter* const missing_filled = registry.GetCounter("online.missing_filled");
  Counter* const shadow_blocks = registry.GetCounter("serve.shadow_blocks");
  const int64_t shadow_blocks0 = shadow_blocks->value();
  const int64_t hits0 = hits->value();
  const int64_t misses0 = misses->value();
  const int64_t evicted0 = evicted->value();
  const int64_t rehydrated0 = rehydrated->value();
  const int64_t rehydrate_failures0 = rehydrate_failures->value();
  const int64_t stash_evictions0 = stash_evictions->value();
  const int64_t missing_filled0 = missing_filled->value();

  std::mutex mu;
  std::map<std::string, std::vector<double>> latencies;
  if (config.collect_scores) {
    for (const auto& [t, stream] : streams) {
      stats.scores[tenant_name(t)] =
          std::vector<float>(static_cast<size_t>(stream.samples.dim(0)), 0.0f);
    }
  }
  auto on_alert = [&](const StreamServer::ScoredBlock& scored) {
    // Shadow dual-scores are drift-statistics traffic, not alerts: they must
    // not land in the alert count, the latency spreads, or the assembled
    // score streams (the streams are the bitwise-parity artifact of the LIVE
    // serving path).
    if (scored.shadow) return;
    std::lock_guard<std::mutex> lock(mu);
    ++stats.alerts;
    if (scored.degrade_level > 0) ++stats.degraded_alerts;
    if (scored.precision != Precision::kF32) ++stats.precision_dropped_alerts;
    latencies[scored.tenant].push_back(scored.latency_seconds);
    if (config.collect_scores) {
      auto it = stats.scores.find(scored.tenant);
      IMDIFF_CHECK(it != stats.scores.end());
      std::vector<float>& out = it->second;
      for (size_t i = 0; i < scored.alert.scores.size(); ++i) {
        const int64_t pos = scored.alert.start + static_cast<int64_t>(i);
        if (pos < static_cast<int64_t>(out.size())) {
          out[static_cast<size_t>(pos)] = scored.alert.scores[i];
        }
      }
    }
  };

  StreamServer server(std::move(model), options, on_alert);
  Stopwatch timer;
  std::vector<int64_t> cursor(static_cast<size_t>(config.num_tenants), 0);
  std::vector<float> sample(static_cast<size_t>(k));
  std::vector<uint8_t> observed;
  int64_t accepted = 0;
  for (const LoadPlan::Burst& burst : schedule) {
    const UglyStream& stream = streams.at(burst.tenant);
    const std::string name = tenant_name(burst.tenant);
    int64_t& pos = cursor[static_cast<size_t>(burst.tenant)];
    for (int64_t j = 0; j < burst.length; ++j, ++pos) {
      std::copy_n(stream.samples.data() + pos * k, k, sample.begin());
      observed.clear();
      if (any_missing) {
        observed.assign(stream.observed.begin() + pos * k,
                        stream.observed.begin() + (pos + 1) * k);
      }
      ++stats.submitted;
      while (!server.Submit(name, sample, observed)) {
        ++stats.rejected;
        std::this_thread::yield();
      }
      ++accepted;
      // Drain on an accepted-sample cadence: a deterministic point in the
      // submission sequence, so eviction/stash decisions — which depend on
      // which sessions have blocks in flight — replay identically.
      if (config.drain_every > 0 && accepted % config.drain_every == 0) {
        server.Drain();
      }
    }
  }
  server.Drain();
  stats.seconds = timer.ElapsedSeconds();
  stats.points_per_second =
      stats.seconds > 0.0
          ? static_cast<double>(config.total_samples) / stats.seconds
          : 0.0;
  // The promotion-decision log must be captured before the server (which
  // owns the trainer) shuts down.
  if (server.refresh() != nullptr) {
    stats.refresh_events = server.refresh()->events();
  }
  server.Shutdown();

  // Reduce each tenant's latencies to p50/p99, then summarize the spread of
  // those values across tenants.
  std::vector<double> p50s;
  std::vector<double> p99s;
  p50s.reserve(latencies.size());
  p99s.reserve(latencies.size());
  for (auto& [tenant, values] : latencies) {
    std::sort(values.begin(), values.end());
    p50s.push_back(SortedPercentile(values, 0.5));
    p99s.push_back(SortedPercentile(values, 0.99));
  }
  stats.tenant_p50 = SpreadOf(std::move(p50s));
  stats.tenant_p99 = SpreadOf(std::move(p99s));

  stats.cache_hits = hits->value() - hits0;
  stats.cache_misses = misses->value() - misses0;
  const int64_t lookups = stats.cache_hits + stats.cache_misses;
  stats.cache_hit_rate =
      lookups > 0 ? static_cast<double>(stats.cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  stats.sessions_evicted = evicted->value() - evicted0;
  stats.sessions_rehydrated = rehydrated->value() - rehydrated0;
  stats.rehydrate_failures =
      rehydrate_failures->value() - rehydrate_failures0;
  stats.stash_evictions = stash_evictions->value() - stash_evictions0;
  stats.missing_filled = missing_filled->value() - missing_filled0;
  stats.shadow_blocks = shadow_blocks->value() - shadow_blocks0;
  stats.peak_rss_kb = ProcessPeakRssKb();
  return stats;
}

double ServedDetectionDelay(const std::vector<uint8_t>& labels,
                            const std::vector<uint8_t>& predictions,
                            int64_t block) {
  IMDIFF_CHECK_EQ(labels.size(), predictions.size());
  IMDIFF_CHECK_GT(block, 0);
  const int64_t n = static_cast<int64_t>(labels.size());
  const auto segments = FindSegments(labels);
  if (segments.empty()) return 0.0;
  double total = 0.0;
  for (const AnomalySegment& seg : segments) {
    int64_t delay = n - seg.start;  // penalty when never detected
    for (int64_t t = seg.start; t < n; ++t) {
      if (predictions[static_cast<size_t>(t)] != 0) {
        // The alarm becomes observable when t's block is emitted, i.e. at
        // the block's last index (a trailing partial block is clamped to
        // the stream end — it would never be emitted, so the penalty above
        // is the honest bound, matched by the clamp).
        const int64_t emitted = std::min(n - 1, (t / block + 1) * block - 1);
        delay = emitted - seg.start;
        break;
      }
    }
    total += static_cast<double>(delay);
  }
  return total / static_cast<double>(segments.size());
}

RunMetrics EvaluateServed(const MtsDataset& dataset, uint64_t seed,
                          SpeedProfile profile,
                          const StreamServer::Options& options) {
  ImDiffusionConfig config = profile == SpeedProfile::kPaper
                                 ? PaperImDiffusionConfig()
                                 : FastImDiffusionConfig();
  config.seed = seed;
  auto detector = std::make_shared<ImDiffusionDetector>(config);

  RunMetrics metrics;
  const MinMaxStats stats = FitMinMax(dataset.train);
  Stopwatch fit_timer;
  detector->Fit(ApplyMinMax(dataset.train, stats));
  metrics.fit_seconds = fit_timer.ElapsedSeconds();

  auto entry = std::make_shared<ModelEntry>();
  entry->name = dataset.name.empty() ? "production" : dataset.name;
  entry->version = 1;
  entry->detector = detector;
  entry->stats = stats;

  StreamServer::Options served = options;
  served.session.seed_base = seed;
  TenantStream stream;
  stream.tenant = "production";
  stream.samples = dataset.test;
  const ReplayStats replay =
      ReplayThroughServer(entry, {std::move(stream)}, served);
  metrics.score_seconds = replay.seconds;
  metrics.points_per_second = replay.points_per_second;

  const std::vector<float>& scores = replay.scores.at("production");
  BinaryMetrics best;
  const float threshold =
      BestF1Threshold(scores, dataset.test_labels, 64, &best);
  metrics.precision = best.precision;
  metrics.recall = best.recall;
  metrics.f1 = best.f1;
  metrics.r_auc_pr = RangeAucPr(scores, dataset.test_labels);
  metrics.r_auc_roc = RangeAucRoc(scores, dataset.test_labels);
  metrics.add = ServedDetectionDelay(dataset.test_labels,
                                     ThresholdScores(scores, threshold),
                                     served.session.online.block);
  return metrics;
}

AggregateMetrics EvaluateServedManySeeds(const MtsDataset& dataset,
                                         int num_seeds, SpeedProfile profile,
                                         const StreamServer::Options& options) {
  IMDIFF_CHECK_GE(num_seeds, 1);
  std::vector<RunMetrics> runs;
  runs.reserve(static_cast<size_t>(num_seeds));
  // Serial over seeds: each run owns the server's worker threads, and the
  // compute pool is already saturated by the batched scoring passes.
  for (int s = 0; s < num_seeds; ++s) {
    runs.push_back(EvaluateServed(
        dataset, 1000 + 17 * static_cast<uint64_t>(s), profile, options));
  }
  AggregateMetrics agg;
  agg.num_runs = num_seeds;
  for (const RunMetrics& r : runs) {
    agg.precision += r.precision;
    agg.recall += r.recall;
    agg.f1 += r.f1;
    agg.r_auc_pr += r.r_auc_pr;
    agg.add += r.add;
    agg.points_per_second += r.points_per_second;
  }
  const double n = static_cast<double>(num_seeds);
  agg.precision /= n;
  agg.recall /= n;
  agg.f1 /= n;
  agg.r_auc_pr /= n;
  agg.add /= n;
  agg.points_per_second /= n;
  double f1_var = 0.0;
  double add_var = 0.0;
  for (const RunMetrics& r : runs) {
    f1_var += (r.f1 - agg.f1) * (r.f1 - agg.f1);
    add_var += (r.add - agg.add) * (r.add - agg.add);
  }
  if (num_seeds > 1) {
    agg.f1_std = std::sqrt(f1_var / (n - 1.0));
    agg.add_std = std::sqrt(add_var / (n - 1.0));
  }
  return agg;
}

ShardedLoadStats ReplayLoadSharded(ShardRouter& router,
                                   const ShardedLoadConfig& config,
                                   int64_t num_features) {
  const LoadConfig& load = config.load;
  LoadPlan plan = BuildLoadPlan(load, num_features);
  ShardedLoadStats stats;
  stats.tenants = plan.tenants;

  // Positional score assembly with conflict detection. A position is written
  // once; a re-delivered block (shard-down recovery replays the journal, so
  // the survivor re-emits blocks the dead shard already delivered) must
  // match the original bitwise — anything else is a correctness failure.
  struct Assembly {
    std::vector<float> scores;
    std::vector<uint8_t> written;
  };
  std::map<std::string, Assembly> assembly;
  for (const auto& [t, stream] : plan.streams) {
    const auto length = static_cast<size_t>(stream.samples.dim(0));
    Assembly& a = assembly[LoadTenantName(t)];
    a.scores.assign(length, 0.0f);
    a.written.assign(length, 0);
  }

  std::mutex mu;
  std::map<std::string, std::vector<double>> latencies;
  router.set_on_block([&](int64_t, const net::ScoredBlockMsg& block) {
    std::lock_guard<std::mutex> lock(mu);
    ++stats.alerts;
    if (block.degrade_level > 0) ++stats.degraded_alerts;
    if (block.precision != 0) ++stats.precision_dropped_alerts;
    latencies[block.tenant].push_back(block.latency_seconds);
    auto it = assembly.find(block.tenant);
    if (it == assembly.end()) return;
    Assembly& a = it->second;
    bool fresh = false;
    bool conflict = false;
    for (size_t i = 0; i < block.scores.size(); ++i) {
      const int64_t pos = block.start + static_cast<int64_t>(i);
      if (pos < 0 || pos >= static_cast<int64_t>(a.scores.size())) continue;
      const auto p = static_cast<size_t>(pos);
      if (a.written[p]) {
        if (std::memcmp(&a.scores[p], &block.scores[i], sizeof(float)) != 0) {
          conflict = true;
        }
      } else {
        a.scores[p] = block.scores[i];
        a.written[p] = 1;
        fresh = true;
        ++stats.positions_written;
      }
    }
    if (conflict) {
      ++stats.score_conflicts;
    } else if (!fresh && !block.scores.empty()) {
      ++stats.duplicate_blocks;
    }
  });

  const std::vector<int64_t> active = [&] {
    std::vector<int64_t> ranks;
    for (const auto& [t, stream] : plan.streams) ranks.push_back(t);
    return ranks;
  }();

  Stopwatch timer;
  std::vector<int64_t> cursor(static_cast<size_t>(load.num_tenants), 0);
  std::vector<float> sample(static_cast<size_t>(num_features));
  std::vector<uint8_t> observed;
  ShardRouter::DrainTotals totals;
  int64_t accepted = 0;
  int64_t barriers = 0;
  int64_t move_cursor = 0;
  for (const LoadPlan::Burst& burst : plan.schedule) {
    // Chaos hook: when "router.shard_down" is armed (e.g. spec
    // router.shard_down:#300), the chosen burst boundary kills the first
    // alive shard — a deterministic point in the submission sequence, so two
    // same-seed chaos runs crash identically.
    if (IMDIFF_FAULT("router.shard_down")) {
      const std::vector<int64_t> alive = router.AliveShards();
      if (alive.size() > 1) {
        router.CrashShard(alive.front());
        ++stats.crashes;
      }
    }
    const UglyStream& stream = plan.streams.at(burst.tenant);
    const std::string name = LoadTenantName(burst.tenant);
    int64_t& pos = cursor[static_cast<size_t>(burst.tenant)];
    for (int64_t j = 0; j < burst.length; ++j, ++pos) {
      std::copy_n(stream.samples.data() + pos * num_features, num_features,
                  sample.begin());
      observed.clear();
      if (plan.any_missing) {
        observed.assign(stream.observed.begin() + pos * num_features,
                        stream.observed.begin() + (pos + 1) * num_features);
      }
      ++stats.submitted;
      IMDIFF_CHECK(router.Submit(name, sample, observed))
          << "router lost every shard: " << router.error();
      ++accepted;
      if (load.drain_every > 0 && accepted % load.drain_every == 0) {
        IMDIFF_CHECK(router.DrainAll(&totals)) << router.error();
        ++barriers;
        if (config.reshard_every > 0 &&
            barriers % config.reshard_every == 0 && !active.empty()) {
          // Round-robin live resharding: rotate through the active tenants,
          // moving each to the next alive shard after its current one.
          for (int64_t m = 0; m < config.reshard_tenants; ++m) {
            const int64_t rank =
                active[static_cast<size_t>(move_cursor %
                                           static_cast<int64_t>(
                                               active.size()))];
            ++move_cursor;
            const std::string mover = LoadTenantName(rank);
            const std::vector<int64_t> alive = router.AliveShards();
            if (alive.size() < 2) break;
            const int64_t current = router.ShardOf(mover);
            size_t idx = 0;
            for (size_t s = 0; s < alive.size(); ++s) {
              if (alive[s] == current) idx = s;
            }
            const int64_t target = alive[(idx + 1) % alive.size()];
            IMDIFF_CHECK(router.MoveTenant(mover, target))
                << router.error();
            ++stats.moves;
          }
        }
      }
    }
  }
  IMDIFF_CHECK(router.DrainAll(&totals)) << router.error();
  stats.seconds = timer.ElapsedSeconds();
  stats.points_per_second =
      stats.seconds > 0.0
          ? static_cast<double>(load.total_samples) / stats.seconds
          : 0.0;
  stats.accepted = totals.accepted;
  stats.shed = totals.shed;
  stats.degraded_blocks = totals.degraded_blocks;
  stats.precision_drops = totals.precision_drops;
  stats.promotions = totals.promotions;
  stats.shadow_blocks = totals.shadow_blocks;
  // The final barrier flushed every worker and its reader delivered every
  // scored block before the drain result (same FIFO connection), so the
  // callback is quiescent and safe to detach.
  router.set_on_block(nullptr);

  std::vector<double> p50s;
  std::vector<double> p99s;
  p50s.reserve(latencies.size());
  p99s.reserve(latencies.size());
  for (auto& [tenant, values] : latencies) {
    std::sort(values.begin(), values.end());
    p50s.push_back(SortedPercentile(values, 0.5));
    p99s.push_back(SortedPercentile(values, 0.99));
  }
  stats.tenant_p50 = SpreadOf(std::move(p50s));
  stats.tenant_p99 = SpreadOf(std::move(p99s));
  stats.peak_rss_kb = ProcessPeakRssKb();

  if (load.collect_scores) {
    for (auto& [tenant, a] : assembly) {
      stats.scores.emplace(tenant, std::move(a.scores));
    }
  }
  return stats;
}

}  // namespace serve
}  // namespace imdiff
