// Shard router: the front process of multi-process sharded serving
// (DESIGN.md §16). Places tenants on N shard workers via consistent hashing,
// forwards samples over ClientChannels, collects scored blocks from per-shard
// reader threads, and aggregates worker state (drain totals, metrics
// snapshots, session stash copies) into one view.
//
// Fault tolerance is journal + stash replay:
//  - At every drain barrier the router refreshes a stash copy of every
//    session (kSnapshot, all-or-nothing commit across shards) and clears its
//    sample journal; between barriers every Submit is journaled.
//  - When a shard dies (send failure, reader down, or an explicit
//    CrashShard), its tenants are re-placed on the survivors: the router
//    imports its barrier-time stash copy and replays the journaled samples
//    since the barrier, in order. The rebuilt worker state is bitwise
//    identical to the lost one — scoring is a pure function of the sample
//    sequence — so re-emitted blocks duplicate already-delivered ones
//    exactly (the assembler checks equality) and nothing is lost.
//
// Threading contract: the control plane (Connect / Submit / DrainAll /
// MoveTenant / CrashShard / ...) is single-threaded — one owner thread calls
// it, matching the one-outstanding-request-per-shard protocol. The
// BlockCallback runs on per-shard reader threads, concurrently with the
// control plane and with itself.

#ifndef IMDIFF_SERVE_ROUTER_H_
#define IMDIFF_SERVE_ROUTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/messages.h"
#include "utils/fault.h"

namespace imdiff {
namespace serve {

struct ShardSpec {
  int64_t id = 0;
  std::string socket_path;
};

struct RouterOptions {
  std::vector<ShardSpec> shards;
  // Reconnect/dial policy for every shard channel; `seed` drives the
  // deterministic backoff jitter (salted per shard and per redial).
  BackoffPolicy reconnect;
  uint64_t seed = 1;
  // Virtual nodes per shard on the consistent-hash ring. More vnodes spread
  // tenants more evenly; placement stays a pure function of (shard ids,
  // tenant name), independent of this process's history.
  int vnodes = 64;
  // Refresh the router-held session stash copies at every DrainAll barrier.
  // Disabling keeps recovery pinned to the last explicit snapshot (tests).
  bool snapshot_on_drain = true;
  // Gates the client-side transport fault points (transport.drop /
  // transport.short_write) on every shard channel.
  bool inject_faults = true;
};

class ShardRouter {
 public:
  // Scored-block delivery; runs on a per-shard reader thread. `shard_id` is
  // the shard that scored the block (after resharding a tenant's blocks can
  // arrive from different shards over time).
  using BlockCallback =
      std::function<void(int64_t shard_id, const net::ScoredBlockMsg&)>;

  explicit ShardRouter(const RouterOptions& options,
                       BlockCallback on_block = nullptr);
  ~ShardRouter();

  // Replaces the scored-block callback (e.g. a replay harness wiring its
  // assembler into an already-connected router). Thread-safe with respect to
  // concurrent deliveries; the previous callback receives no further blocks
  // once this returns.
  void set_on_block(BlockCallback on_block);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Dials every shard, validates the hello handshake (shard id must match
  // the spec — a mismatch means crossed sockets or a duplicate id), and
  // starts the reader threads. False when any shard is unreachable or
  // mis-identified; `error()` then describes the failure.
  bool Connect();

  // Publishes a checkpoint to every shard (kPublish, pipelined). False when
  // any shard fails to load past its retries.
  bool Publish(const std::string& name, const std::string& checkpoint_path,
               int64_t num_features, uint64_t config_seed,
               const std::vector<float>& stats_min,
               const std::vector<float>& stats_max);

  // Journals and forwards one sample to the tenant's shard. A dead shard
  // triggers recovery (re-place + rehydrate + journal replay) transparently;
  // false only when no shard survives.
  bool Submit(const std::string& tenant, const std::vector<float>& sample,
              const std::vector<uint8_t>& observed);

  struct DrainTotals {
    int64_t accepted = 0;  // cumulative, summed over live shards
    int64_t shed = 0;
    int64_t alerts = 0;
    int64_t degraded_blocks = 0;
    int64_t precision_drops = 0;
    // Continuous-refresh activity across live shards (DESIGN.md §18).
    int64_t promotions = 0;
    int64_t shadow_blocks = 0;
  };
  // Barrier: drains every live shard (pipelined — shards drain in
  // parallel), then refreshes the stash copies (all-or-nothing) and clears
  // the journal. Shard deaths during the barrier are recovered and the
  // barrier retried. False only when no shard survives.
  bool DrainAll(DrainTotals* totals);

  // Live resharding move; call only at a barrier (right after DrainAll).
  // Exports the session from its current shard (destructive), imports it on
  // `target_shard`, and repins the tenant. A tenant the source shard does
  // not know (never submitted, or already moved) just repins. False when
  // either end fails; a shard death mid-move is recovered first.
  bool MoveTenant(const std::string& tenant, int64_t target_shard);

  // Chaos: orders `shard_id` to abandon all state and exit (kCrash), waits
  // for the connection to die, then runs shard-down recovery. No-op on an
  // unknown or already-dead shard.
  void CrashShard(int64_t shard_id);

  // Health probe of every live shard (pipelined).
  std::vector<net::HealthResultMsg> Health();

  // MergeMetricsJson over every live shard's registry snapshot plus this
  // process's own — the one-report aggregation the bench harness prints.
  std::string MergedMetricsJson();

  // Graceful: kShutdown to every live shard, wait for their exits.
  void ShutdownAll();

  // Current placement of `tenant` (assignment if pinned, ring otherwise);
  // -1 when no shard is alive.
  int64_t ShardOf(const std::string& tenant);

  int64_t alive_shards() const;
  // Ids of the shards still alive, in spec order — the deterministic basis
  // for chaos target and reshard destination choices.
  std::vector<int64_t> AliveShards() const;
  const std::string& error() const { return error_; }

 private:
  struct Shard;

  Shard* FindShard(int64_t shard_id);
  void ReaderLoop(Shard* shard);
  // Sends `request` and blocks for the matching response type. False when
  // the shard went down first. Stale responses (from a barrier round that
  // was aborted by another shard's death) are discarded by `want` mismatch
  // or by token check at the caller.
  bool Request(Shard* shard, const net::Frame& request, net::MsgType want,
               net::Frame* response);
  bool AwaitResponse(Shard* shard, net::MsgType want, net::Frame* response);
  // Token-checked awaits for the barrier: results of an earlier aborted
  // round carry a stale token and are discarded.
  bool AwaitDrainResult(Shard* shard, uint64_t token,
                        net::DrainResultMsg* out);
  bool AwaitSnapshotResult(Shard* shard, uint64_t token,
                           net::SnapshotResultMsg* out);
  // Ring placement over live shards; -1 when the ring is empty.
  int64_t Place(const std::string& tenant) const;
  // Marks the shard dead, removes it from the ring, re-places its tenants on
  // the survivors (stash import + journal replay). Re-entrant: a survivor
  // dying mid-recovery recovers recursively. False when no shard survives.
  bool HandleShardDown(int64_t shard_id);
  // Delivers one journal entry to the tenant's current shard. kReplayed
  // means the shard died and its (nested) recovery already replayed this
  // tenant's whole journal — the caller stops replaying it.
  enum class SendStatus { kSent, kReplayed, kFailed };
  SendStatus SendJournaled(const std::string& tenant,
                           const std::vector<float>& sample,
                           const std::vector<uint8_t>& observed);

  const RouterOptions options_;
  std::mutex on_block_mu_;  // readers dispatch under it; set_on_block swaps
  BlockCallback on_block_;
  std::string error_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<uint64_t, int64_t> ring_;  // hash point -> shard id (live only)
  std::map<std::string, int64_t> assignment_;  // tenant -> shard id
  // Sample journal since the last committed barrier, in submit order.
  struct JournalEntry {
    std::string tenant;
    std::vector<float> sample;
    std::vector<uint8_t> observed;
  };
  std::vector<JournalEntry> journal_;
  // Barrier-time session copies: tenant -> SerializeSession bytes.
  std::map<std::string, std::vector<uint8_t>> stash_;
  uint64_t barrier_token_ = 0;
  bool shutdown_ = false;
};

}  // namespace serve
}  // namespace imdiff

#endif  // IMDIFF_SERVE_ROUTER_H_
