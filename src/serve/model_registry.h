// Named, versioned registry of fitted models for the serving layer.
//
// A ModelEntry is an immutable published version: one fitted ImDiffusion
// detector shared read-only by every streaming session, plus the min-max
// normalization statistics of its training history (sessions normalize
// incoming raw samples with these). Publishing a new version under the same
// name is a hot swap: the registry pointer is replaced atomically under the
// registry mutex, entries already Acquire()d stay valid (shared_ptr), and
// blocks in flight finish scoring against the version captured when their
// block became ready. See DESIGN.md §11.

#ifndef IMDIFF_SERVE_MODEL_REGISTRY_H_
#define IMDIFF_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/imdiffusion.h"
#include "data/dataset.h"
#include "utils/fault.h"

namespace imdiff {
namespace serve {

// One published model version. Immutable after Publish; the detector is only
// used through its const seeded-scoring interface.
struct ModelEntry {
  std::string name;
  int64_t version = 0;
  std::shared_ptr<const ImDiffusionDetector> detector;
  MinMaxStats stats;  // train-split normalization for incoming raw samples
};

class ModelRegistry {
 public:
  // Publishes a fitted detector under `name`. Returns the new version
  // (1-based, monotonically increasing per name). Thread-safe.
  int64_t Publish(const std::string& name,
                  std::shared_ptr<const ImDiffusionDetector> detector,
                  const MinMaxStats& stats);

  // Warm-loads the checkpoint at `path` (written by SaveModel) into a fresh
  // detector built from `config`, then publishes it.
  //
  // Resilience (DESIGN.md §13): each failed load attempt — a real
  // missing/mismatched file or an injected "registry.load_io" fault — is
  // retried up to backoff.max_attempts times with seeded exponential backoff
  // (registry.load_retries counts retries). When every attempt fails, the
  // previously published version under `name`, if any, keeps serving: the
  // call returns its version and counts registry.load_fallbacks. Returns -1
  // only when there is no previous version to fall back to (registry
  // unchanged).
  int64_t PublishFromFile(const std::string& name,
                          const ImDiffusionConfig& config,
                          const std::string& path, int64_t num_features,
                          const MinMaxStats& stats,
                          const BackoffPolicy& backoff = BackoffPolicy());

  // Latest published version, or nullptr when `name` is unknown. The entry
  // is immutable and survives later Publish calls for as long as the caller
  // holds the pointer.
  std::shared_ptr<const ModelEntry> Acquire(const std::string& name) const;

  // Latest version number for `name`; 0 when unknown.
  int64_t latest_version(const std::string& name) const;

  // ---- Shadow versions (continuous refresh, DESIGN.md §18) --------------
  //
  // A shadow is a fitted candidate staged next to the live version of
  // `name`: it is dual-scored against sampled traffic but invisible to
  // Acquire(), so nothing serves it until the drift verdict promotes it. At
  // most one shadow per name; publishing a new one replaces the old (the
  // refresh loop rolls back before refitting). Shadow entries carry the
  // version the candidate WOULD get if promoted (live + 1 at publish time)
  // so in-flight shadow blocks are distinguishable from live ones by
  // version; the authoritative number is re-assigned at promotion.

  // Stages `detector` as the shadow of `name`. Requires a live version to
  // shadow. Returns the provisional version. Thread-safe.
  int64_t PublishShadow(const std::string& name,
                        std::shared_ptr<const ImDiffusionDetector> detector,
                        const MinMaxStats& stats);

  // Current shadow of `name`, or nullptr when none is staged.
  std::shared_ptr<const ModelEntry> AcquireShadow(const std::string& name) const;

  // Promotes the shadow to the live version (live latest + 1, assigned now)
  // and clears the shadow slot. Returns the new live entry, or nullptr when
  // no shadow is staged. The caller owns swapping serving sessions onto the
  // returned entry (StreamServer::SwapModel).
  std::shared_ptr<const ModelEntry> PromoteShadow(const std::string& name);

  // Drops the staged shadow of `name`, if any (drift verdict rollback, or a
  // crashed shadow round). Entries already acquired stay valid.
  void DropShadow(const std::string& name);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ModelEntry>> entries_;
  std::map<std::string, std::shared_ptr<const ModelEntry>> shadows_;
};

// Writes the detector's checkpoint with bounded retry + seeded backoff.
// Injected save faults ("registry.save_io" before the write, and the
// per-tensor "serialize.save_io" mid-stream crash) throw and are retried
// (registry.save_retries); real stream errors abort as before. Returns false
// after exhausting attempts (registry.save_failures) — callers keep serving
// the in-memory model and may retry later; the previously committed
// checkpoint at `path` is never corrupted (SaveParameters commits by rename).
bool SaveModelWithRetry(const ImDiffusionDetector& detector,
                        const std::string& path,
                        const BackoffPolicy& backoff = BackoffPolicy());

}  // namespace serve
}  // namespace imdiff

#endif  // IMDIFF_SERVE_MODEL_REGISTRY_H_
