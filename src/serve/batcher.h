// Cross-session micro-batching of reverse-diffusion scoring.
//
// Blocks that become ready within a flush window are scored together: the
// cache-missed windows of every pending block — across tenants — are
// concatenated and pushed through ONE ImDiffusionDetector::ScoreWindowBatch
// call, then split back and reduced per block. Because window scores are
// pure functions of (content, seed, model), the batch composition is
// unobservable in the output: per-session score streams are bitwise
// identical to serial per-session scoring. The win is throughput — shared
// chunks amortize per-step model-forward overhead across tenants, and cached
// overlap windows skip recomputation entirely.

#ifndef IMDIFF_SERVE_BATCHER_H_
#define IMDIFF_SERVE_BATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "serve/session_manager.h"

namespace imdiff {
namespace serve {

// Scores one ready block fresh (no cache, no cross-block batching): the
// serial baseline the served path must match bitwise. Pure function of its
// arguments, including `degrade_level` (truncated reverse chain; see
// ImDiffusionDetector::ChainStartForDegradeLevel) and `precision` (reduced-
// precision GEMMs; DESIGN.md §17).
DetectionResult ScoreBlock(const ImDiffusionDetector& detector,
                           uint64_t session_seed,
                           const OnlineDetector::ReadyBlock& ready,
                           int degrade_level = 0,
                           Precision precision = Precision::kF32);

// Scores a batch of ready blocks in one pass. The cache-missed windows of
// all requests are concatenated into a single ScoreWindowBatch call against
// each request's captured model (requests are grouped by (model version,
// degrade level, precision), so a hot swap mid-batch still scores every
// block against the version it captured, and degraded or reduced-precision
// blocks never share a chain with full-quality ones); misses are filled into
// request->scores in place and each block is reduced to a DetectionResult.
// results[i] corresponds to (*requests)[i].
std::vector<DetectionResult> ScoreBlocks(std::vector<BlockRequest>* requests);

// Background flusher that accumulates BlockRequests and scores them with
// ScoreBlocks when either `max_batch_windows` windows are pending or the
// oldest request has waited `flush_window_seconds`. After scoring, each
// request is written back through SessionManager::CompleteBlock (cache fill
// + in-flight release) and handed to the completion callback.
class MicroBatcher {
 public:
  struct Options {
    // Flush when this many windows (cache misses only) are pending.
    int64_t max_batch_windows = 64;
    // ... or when the oldest pending block has waited this long.
    double flush_window_seconds = 0.01;
  };
  using Callback =
      std::function<void(const BlockRequest&, const DetectionResult&)>;

  // `sessions` must outlive the batcher. The callback runs on the flusher
  // thread (or the caller of Flush) with no batcher/session locks held.
  MicroBatcher(SessionManager* sessions, const Options& options,
               Callback on_scored);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  void Submit(BlockRequest request);

  // Synchronously scores everything pending (including blocks the flusher
  // thread is working on: returns only once the batcher is idle).
  void Flush();

  // Drains pending work, then stops the flusher thread. Idempotent; called
  // by the destructor.
  void Shutdown();

  // Blocks queued plus blocks inside in-flight scoring batches that have not
  // been completed yet — the honest backpressure/drain signal. (An in-flight
  // batch used to count as one block regardless of size, so drain progress
  // and load reporting undercounted by up to the batch size under load.)
  int64_t pending_blocks() const;

 private:
  void FlusherLoop();
  // Takes the current pending batch (caller must hold mu_), scores it with
  // the lock released, completes and calls back.
  void ScoreBatchLocked(std::unique_lock<std::mutex>& lock);

  SessionManager* const sessions_;
  const Options options_;
  const Callback on_scored_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes the flusher
  std::condition_variable cv_idle_;   // wakes Flush/Shutdown waiters
  std::vector<BlockRequest> pending_;
  int64_t pending_windows_ = 0;  // cache misses in pending_
  std::chrono::steady_clock::time_point oldest_{};
  int scoring_ = 0;  // batches being scored right now
  // Blocks inside in-flight batches, not yet completed. Atomic so each
  // block's completion can decrement it without re-taking mu_ mid-batch.
  std::atomic<int64_t> inflight_blocks_{0};
  bool stop_ = false;
  std::thread flusher_;
};

}  // namespace serve
}  // namespace imdiff

#endif  // IMDIFF_SERVE_BATCHER_H_
