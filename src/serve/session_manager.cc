#include "serve/session_manager.h"

#include <algorithm>
#include <utility>

#include "net/wire.h"
#include "utils/check.h"
#include "utils/fault.h"
#include "utils/metrics.h"
#include "utils/rng.h"

namespace imdiff {
namespace serve {

uint64_t TenantSeed(uint64_t seed_base, const std::string& tenant) {
  return MixSeed(seed_base, HashBytes(tenant.data(), tenant.size()));
}

uint64_t WindowSeed(uint64_t session_seed, int64_t global_start) {
  return MixSeed(session_seed, static_cast<uint64_t>(global_start));
}

BlockPlan PlanBlock(const ImDiffusionDetector& detector, uint64_t session_seed,
                    const OnlineDetector::ReadyBlock& ready) {
  BlockPlan plan;
  plan.windows = detector.PlanWindows(ready.series);
  const int64_t buffered = ready.series.dim(0);
  const int64_t window = detector.config().model.window;
  // First sample of the buffer in global stream coordinates.
  const int64_t buffer_start = ready.total_at_ready - buffered;
  plan.seeds.reserve(plan.windows.starts.size());
  plan.cache_keys.reserve(plan.windows.starts.size());
  for (size_t i = 0; i < plan.windows.starts.size(); ++i) {
    if (buffered >= window) {
      const int64_t global_start = buffer_start + plan.windows.starts[i];
      plan.seeds.push_back(WindowSeed(session_seed, global_start));
      plan.cache_keys.push_back(global_start);
    } else {
      // Front-padded short first block: the window content depends on the
      // padding, not purely on stream position, so it must not enter the
      // position-keyed cache. Seed it from a disjoint coordinate space.
      plan.seeds.push_back(MixSeed(
          session_seed,
          (1ull << 63) ^ static_cast<uint64_t>(ready.total_at_ready + static_cast<int64_t>(i))));
      plan.cache_keys.push_back(-1);
    }
  }
  return plan;
}

SessionManager::SessionManager(std::shared_ptr<const ModelEntry> model,
                               const Options& options)
    : model_(std::move(model)), options_(options) {
  IMDIFF_CHECK(model_ != nullptr);
  IMDIFF_CHECK(model_->detector != nullptr && model_->detector->fitted());
  IMDIFF_CHECK_GT(options_.max_resident, 0);
  IMDIFF_CHECK_GE(options_.max_stashed, 0);
}

SessionManager::Session& SessionManager::GetOrCreateLocked(
    const std::string& tenant) {
  auto it = sessions_.find(tenant);
  if (it != sessions_.end()) return it->second;

  // Make room BEFORE inserting: the new session must never be an eviction
  // candidate itself (it has no LRU tick yet, and the caller holds a
  // reference into the map).
  MaybeEvictLocked(/*incoming=*/1);
  MetricsRegistry& registry = MetricsRegistry::Global();
  auto inserted =
      sessions_.emplace(tenant, Session(options_.online)).first;
  Session& session = inserted->second;
  session.seed = TenantSeed(options_.seed_base, tenant);
  auto stashed = stash_.find(tenant);
  if (stashed != stash_.end() && IMDIFF_FAULT("session.rehydrate")) {
    // Injected rehydrate failure (a corrupt or lost stash in a real
    // deployment): drop the stash and rebuild the session from the live
    // stream instead of crashing. The tenant restarts with fresh counters —
    // stream positions (and thus window seeds) reset, which is degradation,
    // not data loss: every subsequent sample still gets scored.
    stash_.erase(stashed);
    stashed = stash_.end();
    registry.GetCounter("serve.rehydrate_failures")->Increment();
    registry.GetGauge("serve.stash_size")
        ->Set(static_cast<double>(stash_.size()));
  }
  if (stashed != stash_.end()) {
    // Rehydrate an evicted session: the stashed state restores the rolling
    // buffer, counters and normalization, so the continuation is bitwise
    // identical to a never-evicted session (window seeds are derived from
    // the restored global positions).
    session.online.ImportState(stashed->second.state);
    session.blocks = stashed->second.blocks;
    session.refresh_recent = std::move(stashed->second.refresh_recent);
    stash_.erase(stashed);
    registry.GetCounter("serve.sessions_rehydrated")->Increment();
    registry.GetGauge("serve.stash_size")
        ->Set(static_cast<double>(stash_.size()));
  } else {
    session.online.SetNormalization(model_->stats);
    registry.GetCounter("serve.sessions_created")->Increment();
  }
  return inserted->second;
}

void SessionManager::MaybeEvictLocked(int64_t incoming) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  while (static_cast<int64_t>(sessions_.size()) + incoming >
         options_.max_resident) {
    auto victim = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second.pending > 0) continue;  // block in flight at the batcher
      if (victim == sessions_.end() || it->second.tick < victim->second.tick) {
        victim = it;
      }
    }
    // Every over-cap session has work in flight: over-commit rather than
    // lose state; the next Append retries eviction.
    if (victim == sessions_.end()) return;
    Stash stash;
    stash.state = victim->second.online.ExportState();
    stash.blocks = victim->second.blocks;
    stash.tick = ++tick_;
    stash.refresh_recent = std::move(victim->second.refresh_recent);
    stash_[victim->first] = std::move(stash);
    sessions_.erase(victim);
    registry.GetCounter("serve.sessions_evicted")->Increment();
    registry.GetGauge("serve.stash_size")
        ->Set(static_cast<double>(stash_.size()));
    // Cap the stash: without a bound, Zipf-scale tenant churn turns it into
    // an unbounded leak (every distinct tenant leaves a stash behind). Drop
    // the least recently evicted stash — the tenant least likely to return.
    while (static_cast<int64_t>(stash_.size()) > options_.max_stashed) {
      auto drop = stash_.begin();
      for (auto it = stash_.begin(); it != stash_.end(); ++it) {
        if (it->second.tick < drop->second.tick) drop = it;
      }
      stash_.erase(drop);
      registry.GetCounter("serve.stash_evictions")->Increment();
      registry.GetGauge("serve.stash_size")
          ->Set(static_cast<double>(stash_.size()));
    }
  }
}

bool SessionManager::Append(const std::string& tenant,
                            const std::vector<float>& sample,
                            BlockRequest* request) {
  return Append(tenant, sample, {}, request);
}

bool SessionManager::Append(const std::string& tenant,
                            const std::vector<float>& sample,
                            const std::vector<uint8_t>& observed,
                            BlockRequest* request) {
  IMDIFF_CHECK(request != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  Session& session = GetOrCreateLocked(tenant);
  session.tick = ++tick_;

  // Refresh-window capture (DESIGN.md §18): retain a sampled subset of
  // fully observed raw samples for the next candidate fit. The retention
  // decision is keyed by (refresh seed, session seed, tenant stream
  // position) — order-independent across tenants and workers — and the
  // per-tenant deque keeps memory bounded.
  if (options_.refresh_recent > 0 &&
      (observed.empty() ||
       std::all_of(observed.begin(), observed.end(),
                   [](uint8_t o) { return o != 0; }))) {
    const uint64_t key =
        MixSeed(options_.refresh_seed,
                MixSeed(session.seed,
                        static_cast<uint64_t>(session.online.total_samples())));
    if (options_.refresh_sample_rate >= 1.0 ||
        static_cast<double>(key) * 0x1.0p-64 < options_.refresh_sample_rate) {
      session.refresh_recent.push_back(sample);
      while (static_cast<int64_t>(session.refresh_recent.size()) >
             options_.refresh_recent) {
        session.refresh_recent.pop_front();
      }
    }
  }

  OnlineDetector::ReadyBlock ready;
  if (!session.online.AppendBuffered(sample, observed, &ready)) return false;

  request->tenant = tenant;
  request->block_index = session.blocks++;
  request->session_seed = session.seed;
  request->model = model_;
  request->plan = PlanBlock(*model_->detector, session.seed, ready);
  request->ready = std::move(ready);
  request->ready_time = std::chrono::steady_clock::now();

  const size_t num_windows = request->plan.seeds.size();
  request->scores.assign(num_windows, {});
  request->hit.assign(num_windows, 0);
  MetricsRegistry& registry = MetricsRegistry::Global();
  int64_t hits = 0;
  if (options_.cache_window_scores) {
    for (size_t i = 0; i < num_windows; ++i) {
      const int64_t key = request->plan.cache_keys[i];
      if (key < 0) continue;
      auto cached = session.cache.find(key);
      if (cached == session.cache.end()) continue;
      request->scores[i] = cached->second;
      request->hit[i] = 1;
      ++hits;
    }
  }
  registry.GetCounter("serve.cache_hits")->Increment(hits);
  registry.GetCounter("serve.cache_misses")
      ->Increment(static_cast<int64_t>(num_windows) - hits);

  ++session.pending;
  ++pending_total_;
  return true;
}

void SessionManager::CompleteBlock(const BlockRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  --pending_total_;
  auto it = sessions_.find(request.tenant);
  // pending > 0 pins the session, so it must still be resident.
  IMDIFF_CHECK(it != sessions_.end())
      << "session evicted with a block in flight:" << request.tenant;
  Session& session = it->second;
  IMDIFF_CHECK_GT(session.pending, 0);
  --session.pending;
  if (!options_.cache_window_scores) return;
  // Shadow dual-scores never touch the cache: cached entries are reused as
  // live full-quality scores, and these belong to the staged candidate.
  if (request.shadow) return;
  // A hot swap between ready and completion invalidates the write-back: the
  // scores belong to the old version, the cache to the new one.
  if (request.model != model_) return;
  // Degraded (truncated-chain or reduced-precision) scores must not
  // contaminate the cache: cached entries are reused as full-quality scores
  // by later overlapping blocks.
  if (request.degrade_level != 0) return;
  if (request.precision != Precision::kF32) return;
  for (size_t i = 0; i < request.plan.cache_keys.size(); ++i) {
    const int64_t key = request.plan.cache_keys[i];
    if (key < 0 || request.hit[i]) continue;
    session.cache[key] = request.scores[i];
  }
  // Prune entries that can no longer reappear. The next block becomes ready
  // at total + block with context + block samples buffered, so its buffer —
  // and every later one's — starts at total - context; keys below that are
  // dead. (The earlier bound of total - (context + block) was off by the
  // block size: it kept a dead span of `block` positions per session, which
  // at Zipf-tenant counts is real memory for entries no lookup can reach.)
  if (options_.prune_window_cache) {
    const int64_t min_keep =
        request.ready.total_at_ready - options_.online.context;
    session.cache.erase(session.cache.begin(),
                        session.cache.lower_bound(min_keep));
  }
}

void SessionManager::DuplicateForShadow(
    const BlockRequest& live, std::shared_ptr<const ModelEntry> shadow_model,
    BlockRequest* out) {
  IMDIFF_CHECK(out != nullptr);
  IMDIFF_CHECK(shadow_model != nullptr && shadow_model->detector != nullptr);
  // The plan (window starts and seeds) was laid out for the live model's
  // window/stride; it is only valid against a shadow with the same geometry.
  IMDIFF_CHECK_EQ(shadow_model->detector->config().model.window,
                  live.model->detector->config().model.window);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(live.tenant);
  IMDIFF_CHECK(it != sessions_.end()) << "shadow of an unknown session";
  IMDIFF_CHECK_GT(it->second.pending, 0)
      << "shadow duplicate of a block not in flight";
  *out = live;
  out->model = std::move(shadow_model);
  out->shadow = true;
  // No cache prefill: the session cache holds live-version scores.
  out->scores.assign(out->plan.seeds.size(), {});
  out->hit.assign(out->plan.seeds.size(), 0);
  ++it->second.pending;
  ++pending_total_;
}

bool SessionManager::CollectRefreshSegments(int64_t min_rows,
                                            std::vector<Tensor>* out) const {
  IMDIFF_CHECK(out != nullptr);
  out->clear();
  std::lock_guard<std::mutex> lock(mu_);
  // Tenant-name-ordered merge over resident and stashed sessions (a tenant
  // is in exactly one of the two maps), so the assembled corpus is a pure
  // function of per-session state.
  std::vector<const std::deque<std::vector<float>>*> sources;
  auto resident = sessions_.begin();
  auto stashed = stash_.begin();
  while (resident != sessions_.end() || stashed != stash_.end()) {
    const std::deque<std::vector<float>>* recent = nullptr;
    if (stashed == stash_.end() ||
        (resident != sessions_.end() && resident->first < stashed->first)) {
      recent = &resident->second.refresh_recent;
      ++resident;
    } else {
      recent = &stashed->second.refresh_recent;
      ++stashed;
    }
    if (static_cast<int64_t>(recent->size()) < std::max<int64_t>(min_rows, 1))
      continue;
    sources.push_back(recent);
  }
  if (sources.empty()) return false;
  const int64_t k = static_cast<int64_t>(sources.front()->front().size());
  out->reserve(sources.size());
  for (const auto* recent : sources) {
    Tensor segment =
        Tensor::Uninitialized({static_cast<int64_t>(recent->size()), k});
    float* dst = segment.mutable_data();
    for (const std::vector<float>& row : *recent) {
      IMDIFF_CHECK_EQ(static_cast<int64_t>(row.size()), k);
      std::copy(row.begin(), row.end(), dst);
      dst += k;
    }
    out->push_back(std::move(segment));
  }
  return true;
}

void SessionManager::SwapModel(std::shared_ptr<const ModelEntry> model) {
  IMDIFF_CHECK(model != nullptr);
  IMDIFF_CHECK(model->detector != nullptr && model->detector->fitted());
  std::lock_guard<std::mutex> lock(mu_);
  model_ = std::move(model);
  for (auto& [tenant, session] : sessions_) session.cache.clear();
  MetricsRegistry::Global().GetCounter("serve.model_swaps")->Increment();
}

std::shared_ptr<const ModelEntry> SessionManager::model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_;
}

int64_t SessionManager::resident_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

int64_t SessionManager::stashed_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(stash_.size());
}

int64_t SessionManager::pending_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_total_;
}

namespace {

// Bump on any layout change: a version mismatch fails the decode cleanly
// instead of misreading a foreign process's bytes. v2 appended the tenant's
// refresh-window samples (continuous refresh, DESIGN.md §18).
constexpr uint8_t kSessionWireVersion = 2;

}  // namespace

std::vector<uint8_t> SerializeSession(const SessionSnapshot& snapshot) {
  net::WireWriter w;
  w.U8(kSessionWireVersion);
  w.I64(snapshot.blocks);
  w.I64(snapshot.state.num_features);
  w.I64(snapshot.state.total_samples);
  w.I64(snapshot.state.pending);
  w.FloatVec(snapshot.state.stats.min);
  w.FloatVec(snapshot.state.stats.max);
  w.U32(static_cast<uint32_t>(snapshot.state.buffer.size()));
  for (const std::vector<float>& row : snapshot.state.buffer) w.FloatVec(row);
  w.FloatVec(snapshot.state.fill);
  w.U32(static_cast<uint32_t>(snapshot.refresh_recent.size()));
  for (const std::vector<float>& row : snapshot.refresh_recent) w.FloatVec(row);
  return w.Take();
}

bool DeserializeSession(const std::vector<uint8_t>& bytes,
                        SessionSnapshot* out) {
  IMDIFF_CHECK(out != nullptr);
  net::WireReader r(bytes);
  uint8_t version = 0;
  if (!r.U8(&version) || version != kSessionWireVersion) return false;
  r.I64(&out->blocks);
  r.I64(&out->state.num_features);
  r.I64(&out->state.total_samples);
  r.I64(&out->state.pending);
  r.FloatVec(&out->state.stats.min);
  r.FloatVec(&out->state.stats.max);
  uint32_t rows = 0;
  r.U32(&rows);
  out->state.buffer.clear();
  for (uint32_t i = 0; i < rows && r.ok(); ++i) {
    std::vector<float> row;
    if (!r.FloatVec(&row)) return false;
    out->state.buffer.push_back(std::move(row));
  }
  r.FloatVec(&out->state.fill);
  uint32_t refresh_rows = 0;
  r.U32(&refresh_rows);
  out->refresh_recent.clear();
  for (uint32_t i = 0; i < refresh_rows && r.ok(); ++i) {
    std::vector<float> row;
    if (!r.FloatVec(&row)) return false;
    out->refresh_recent.push_back(std::move(row));
  }
  return r.ok() && r.remaining() == 0 &&
         out->state.buffer.size() == rows &&
         out->refresh_recent.size() == refresh_rows;
}

bool SessionManager::SnapshotSession(const std::string& tenant,
                                     SessionSnapshot* out) const {
  IMDIFF_CHECK(out != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto resident = sessions_.find(tenant);
  if (resident != sessions_.end()) {
    if (resident->second.pending > 0) return false;  // drain first
    out->state = resident->second.online.ExportState();
    out->blocks = resident->second.blocks;
    out->refresh_recent.assign(resident->second.refresh_recent.begin(),
                               resident->second.refresh_recent.end());
    return true;
  }
  auto stashed = stash_.find(tenant);
  if (stashed == stash_.end()) return false;
  out->state = stashed->second.state;
  out->blocks = stashed->second.blocks;
  out->refresh_recent.assign(stashed->second.refresh_recent.begin(),
                             stashed->second.refresh_recent.end());
  return true;
}

bool SessionManager::ExportSession(const std::string& tenant,
                                   SessionSnapshot* out) {
  IMDIFF_CHECK(out != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  MetricsRegistry& registry = MetricsRegistry::Global();
  auto resident = sessions_.find(tenant);
  if (resident != sessions_.end()) {
    if (resident->second.pending > 0) return false;
    out->state = resident->second.online.ExportState();
    out->blocks = resident->second.blocks;
    out->refresh_recent.assign(resident->second.refresh_recent.begin(),
                               resident->second.refresh_recent.end());
    sessions_.erase(resident);
    registry.GetCounter("serve.sessions_exported")->Increment();
    return true;
  }
  auto stashed = stash_.find(tenant);
  if (stashed == stash_.end()) return false;
  out->state = std::move(stashed->second.state);
  out->blocks = stashed->second.blocks;
  out->refresh_recent.assign(stashed->second.refresh_recent.begin(),
                             stashed->second.refresh_recent.end());
  stash_.erase(stashed);
  registry.GetCounter("serve.sessions_exported")->Increment();
  registry.GetGauge("serve.stash_size")
      ->Set(static_cast<double>(stash_.size()));
  return true;
}

void SessionManager::ImportSession(const std::string& tenant,
                                   const SessionSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsRegistry& registry = MetricsRegistry::Global();
  // Replace wholesale: a move or a recovery rehydrate supersedes whatever
  // partial state this shard held for the tenant.
  auto resident = sessions_.find(tenant);
  if (resident != sessions_.end()) {
    IMDIFF_CHECK_EQ(resident->second.pending, 0)
        << "session imported over a block in flight:" << tenant;
    sessions_.erase(resident);
  }
  Stash stash;
  stash.state = snapshot.state;
  stash.blocks = snapshot.blocks;
  stash.refresh_recent.assign(snapshot.refresh_recent.begin(),
                              snapshot.refresh_recent.end());
  stash.tick = ++tick_;  // newest: an over-cap drop evicts older stashes
  stash_[tenant] = std::move(stash);
  registry.GetCounter("serve.sessions_imported")->Increment();
  while (static_cast<int64_t>(stash_.size()) > options_.max_stashed) {
    auto drop = stash_.begin();
    for (auto it = stash_.begin(); it != stash_.end(); ++it) {
      if (it->second.tick < drop->second.tick) drop = it;
    }
    stash_.erase(drop);
    registry.GetCounter("serve.stash_evictions")->Increment();
  }
  registry.GetGauge("serve.stash_size")
      ->Set(static_cast<double>(stash_.size()));
}

std::vector<std::string> SessionManager::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> tenants;
  tenants.reserve(sessions_.size() + stash_.size());
  for (const auto& [tenant, session] : sessions_) tenants.push_back(tenant);
  for (const auto& [tenant, stash] : stash_) tenants.push_back(tenant);
  return tenants;
}

int64_t SessionManager::cached_window_scores() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [tenant, session] : sessions_) {
    total += static_cast<int64_t>(session.cache.size());
  }
  return total;
}

}  // namespace serve
}  // namespace imdiff
