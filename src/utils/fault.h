// Deterministic process-wide fault injection (DESIGN.md §13).
//
// Production code declares named injection points with IMDIFF_FAULT("name");
// the call returns true when the registry decides that call should fail, and
// the caller exercises its degradation path (fall back to a plain allocation,
// retry a load, rebuild a session, ...). With no configuration every point
// is disarmed and the check is a single relaxed atomic load.
//
// Configuration is a comma-separated spec, from the IMDIFF_FAULTS environment
// variable (seeded by IMDIFF_FAULTS_SEED) or FaultRegistry::Configure:
//
//   IMDIFF_FAULTS="arena.alloc:0.01,registry.load_io:0.05,serialize.save_io:#2"
//
//   point:P      fire with probability P in [0, 1] per call
//   point:PxM    ... but at most M times total
//   point:#N     fire exactly on the N-th call (1-based), once
//
// Determinism is the design center: a probability trigger hashes (seed, call
// index), so for a fixed spec + seed the k-th call to a point always makes
// the same decision — two runs with identical traffic inject identical
// faults. FireKeyed(key) goes further: the decision is a pure function of
// (seed, key), independent of call order and thread interleaving, which is
// what lets the serving layer make deadline decisions reproducible (keyed by
// session/block) in the CI chaos job.
//
// Tests use FaultScope, which swaps in a spec and restores the previous
// configuration on scope exit. Configure resets every point's call/fire
// counters so each configuration replays its schedule from the start.

#ifndef IMDIFF_UTILS_FAULT_H_
#define IMDIFF_UTILS_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace imdiff {

// One named injection point. Handles are process-lifetime (owned by the
// FaultRegistry) and safe to cache, mirroring the metrics registry.
class FaultPoint {
 public:
  // Sequence trigger: consumes one call index and decides from
  // hash(seed, index) — deterministic per (spec, seed, call count).
  bool Fire();

  // Keyed trigger: pure function of (seed, key); does not consume a call
  // index and ignores count triggers and fire caps, so the decision is
  // independent of call order and thread interleaving.
  bool FireKeyed(uint64_t key);

  // True when the current configuration can make this point fire.
  bool armed() const {
    return probability_.load(std::memory_order_relaxed) > 0.0 ||
           fire_on_call_.load(std::memory_order_relaxed) > 0;
  }

  int64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  int64_t fired() const { return fired_.load(std::memory_order_relaxed); }

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

 private:
  friend class FaultRegistry;
  FaultPoint() = default;

  void Arm(double probability, int64_t fire_on_call, int64_t max_fires,
           uint64_t seed);
  void Disarm();

  std::atomic<double> probability_{0.0};
  std::atomic<int64_t> fire_on_call_{0};  // > 0: fire exactly on this call
  std::atomic<int64_t> max_fires_{-1};    // < 0: unlimited
  std::atomic<uint64_t> seed_{0};
  std::atomic<int64_t> calls_{0};
  std::atomic<int64_t> fired_{0};
};

class FaultRegistry {
 public:
  // Leaked singleton (like Arena/MetricsRegistry: injection points may be
  // consulted during static destruction). The first call reads IMDIFF_FAULTS
  // and IMDIFF_FAULTS_SEED from the environment.
  static FaultRegistry& Global();

  // Stable handle for `name`, created on first use. Thread-safe.
  FaultPoint* GetPoint(const std::string& name);

  // Replaces the active configuration with `spec` (grammar above; empty
  // disarms everything) under `seed`. Every point's call/fire counters are
  // reset so the new schedule replays deterministically from call 1. Aborts
  // with a parse error on a malformed spec. Thread-safe, but not atomic with
  // respect to concurrent Fire() calls — configure before traffic.
  void Configure(const std::string& spec, uint64_t seed);

  // Fast path gate: false means no point anywhere is armed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Active configuration (for FaultScope save/restore).
  std::string spec() const;
  uint64_t seed() const;

  // Fired counts per point name (points that never fired included as 0).
  std::map<std::string, int64_t> FireCounts() const;

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

 private:
  FaultRegistry();
  ~FaultRegistry() = default;

  FaultPoint* GetPointLocked(const std::string& name);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<FaultPoint>> points_;
  std::string spec_;
  uint64_t seed_ = 1;
};

// RAII configuration swap for tests: installs `spec` on construction and
// restores the previous spec/seed (resetting counters) on destruction.
class FaultScope {
 public:
  explicit FaultScope(const std::string& spec, uint64_t seed = 1);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  std::string prev_spec_;
  uint64_t prev_seed_;
};

// Bounded retry with seeded exponential backoff + jitter (model-registry
// checkpoint I/O, DESIGN.md §13). max_attempts counts tries, not retries.
struct BackoffPolicy {
  int max_attempts = 4;
  double base_seconds = 0.005;
  double multiplier = 2.0;
  // Fraction of each delay that is randomized: delay_i lands in
  // [base·mult^i·(1-jitter), base·mult^i].
  double jitter = 0.5;
};

// The max_attempts-1 delays (seconds) slept before retries 1..max_attempts-1.
// A pure function of (policy, seed): retry schedules are reproducible, so an
// injected-fault run is bit-identical in its retry behavior too.
std::vector<double> BackoffSchedule(const BackoffPolicy& policy, uint64_t seed);

}  // namespace imdiff

// True when the named injection point decides this call should fail. `name`
// must be a string literal; the registry handle is resolved once per call
// site. Disarmed cost: one relaxed atomic load.
#define IMDIFF_FAULT(name)                                             \
  (::imdiff::FaultRegistry::Global().armed() && ([]() -> bool {        \
     static ::imdiff::FaultPoint* const imdiff_fault_point =           \
         ::imdiff::FaultRegistry::Global().GetPoint(name);             \
     return imdiff_fault_point->Fire();                                \
   }()))

// Keyed variant: the decision is a pure function of (fault seed, key),
// independent of call order (see FaultPoint::FireKeyed).
#define IMDIFF_FAULT_KEYED(name, key)                                  \
  (::imdiff::FaultRegistry::Global().armed() &&                        \
   ([](uint64_t imdiff_fault_key) -> bool {                            \
     static ::imdiff::FaultPoint* const imdiff_fault_point =           \
         ::imdiff::FaultRegistry::Global().GetPoint(name);             \
     return imdiff_fault_point->FireKeyed(imdiff_fault_key);           \
   }(key)))

#endif  // IMDIFF_UTILS_FAULT_H_
