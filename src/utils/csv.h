// Small CSV reader/writer used for loading external MTS data and dumping
// benchmark series.

#ifndef IMDIFF_UTILS_CSV_H_
#define IMDIFF_UTILS_CSV_H_

#include <string>
#include <vector>

namespace imdiff {

// Parses a CSV file of floats into rows. `skip_header` drops the first line.
// Aborts on unreadable files; malformed cells parse as 0.
std::vector<std::vector<float>> ReadCsv(const std::string& path,
                                        bool skip_header);

// Writes rows of floats as CSV, with an optional header line.
void WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<float>>& rows);

// Splits one CSV line on commas (no quoting support; data files are numeric).
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace imdiff

#endif  // IMDIFF_UTILS_CSV_H_
