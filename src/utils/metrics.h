// Process-wide observability: named counters, gauges, and latency histograms
// aggregated in a global registry, plus RAII scoped timers for per-phase
// tracing (IMDIFF_TRACE_SCOPE). This is the substrate for the BENCH_*.json
// perf trajectory: every harness binary can dump the registry with
// --metrics-out <path>, and bench_micro has a snapshot mode that exercises
// the instrumented phases end to end.
//
// Design (see DESIGN.md §10):
//  - Instruments are registered by name on first use and live for the
//    process lifetime; handles (raw pointers) stay valid across Reset().
//  - All mutation paths are lock-free (relaxed atomics / CAS loops), so
//    instruments may be hammered from pool workers without serialization.
//  - Collection is globally switchable: SetMetricsEnabled(false) turns
//    IMDIFF_TRACE_SCOPE and the thread-pool instrumentation into a single
//    relaxed atomic load — no clock reads, no recording.
//  - Naming convention: <layer>.<phase>_<unit>, e.g. "train.epoch_seconds",
//    "pool.queue_wait_seconds", "online.block_score_seconds". Dynamic
//    suffixes (detector/dataset names) are allowed on cold paths only.

#ifndef IMDIFF_UTILS_METRICS_H_
#define IMDIFF_UTILS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace imdiff {

// Monotonically increasing event count. All methods are thread-safe.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-written value (e.g. the most recent epoch loss). Thread-safe.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  // Atomic increment/decrement (CAS loop), for gauges that track a level
  // maintained by many threads — e.g. the serving layer's queue depth, where
  // concurrent Set(value() + d) calls would lose updates.
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Latency histogram over exponential buckets: bucket b counts observations in
// (bound(b-1), bound(b)] with bound(b) = 1µs · 2^b, covering ~1µs to ~18min;
// out-of-range observations land in the first/last bucket. Also tracks exact
// count/sum/min/max. Recording is a few relaxed atomics and one CAS loop, so
// concurrent recording from pool workers aggregates without locks.
class Histogram {
 public:
  static constexpr int kNumBuckets = 31;

  // Upper bound of bucket `b` in seconds (the last bucket is unbounded).
  static double BucketBound(int b);

  void Record(double seconds);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // 0 when empty.
  double min() const;
  double max() const;
  double mean() const;
  int64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  // Upper bucket bound containing the q-quantile observation (q in [0, 1]),
  // clamped into [min(), max()] so estimates never leave the observed range
  // (q=0 returns min()); 0 when empty. Bucket resolution (factor 2) bounds
  // the error.
  double Percentile(double q) const;

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Seeded at ±inf so the CAS-min/max loops need no first-observation
  // special case (a seeded sentinel store could race a concurrent Record
  // and lose its observation); min()/max() report 0 while empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// Name-keyed singleton owning every instrument. Lookup takes a mutex (cold
// path — call sites cache the returned handle; IMDIFF_TRACE_SCOPE does so
// automatically via a function-local static). Handles remain valid for the
// process lifetime; Reset() zeroes values without invalidating them.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Zeroes every registered instrument (handles stay valid).
  void Reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  friend std::string MetricsToJson();
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Global collection switch (default: enabled). Disabling reduces
// IMDIFF_TRACE_SCOPE and the pool instrumentation to one relaxed load.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

// Serializes the registry: {"counters": {...}, "gauges": {...},
// "histograms": {name: {count, sum, min, max, mean, p50, p90, p99,
// buckets: [{le, count}, ...]}}}. Buckets with zero count are omitted.
std::string MetricsToJson();

// Writes MetricsToJson() to `path`. Returns false on IO failure.
bool WriteMetricsJson(const std::string& path);

// Merges per-process MetricsToJson() snapshots into one snapshot in the same
// schema: counters sum, gauges take the maximum, histograms merge bucket-wise
// (per-bound counts and the count/sum add, min/max combine, mean and
// p50/p90/p99 are recomputed from the merged buckets with the same
// clamped-bucket-bound estimator Histogram::Percentile uses). This is how
// the shard router folds N worker snapshots into one report — per-process
// snapshots are otherwise incomparable. A snapshot that fails to parse is
// skipped and counted in the merge.parse_failures counter of the *local*
// registry.
std::string MergeMetricsJson(const std::vector<std::string>& snapshots);

// Checks at startup that `path` will be writable at shutdown: opens it in
// append mode (preserving existing content) and, when the probe itself
// created the file, removes it again. Lets tools with --metrics-out /
// --kernels-out style flags fail fast instead of losing a whole run to a
// bad path.
bool ProbeWritable(const std::string& path);

// Peak resident set size of this process in kilobytes (getrusage ru_maxrss),
// or -1 where the platform does not expose it. Monotone over the process
// lifetime — load tests read it to assert bounded memory, not current usage.
int64_t ProcessPeakRssKb();

// Times a scope and records the elapsed seconds into `histogram` on
// destruction. A null histogram (or metrics disabled at construction)
// records nothing and skips the clock reads.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(MetricsEnabled() ? histogram : nullptr) {
    if (histogram_ != nullptr) start_ = Clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(
          std::chrono::duration<double>(Clock::now() - start_).count());
    }
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

}  // namespace imdiff

// Times the enclosing scope into the named histogram. The registry lookup
// happens once per call site (function-local static); per-execution cost is
// one relaxed load plus, when enabled, two steady_clock reads and a
// lock-free Record. `name` must be a string literal (one histogram per
// call site).
#define IMDIFF_TRACE_CONCAT_INNER(a, b) a##b
#define IMDIFF_TRACE_CONCAT(a, b) IMDIFF_TRACE_CONCAT_INNER(a, b)
#define IMDIFF_TRACE_SCOPE(name)                                            \
  static ::imdiff::Histogram* const IMDIFF_TRACE_CONCAT(                    \
      imdiff_trace_hist_, __LINE__) =                                       \
      ::imdiff::MetricsRegistry::Global().GetHistogram(name);               \
  ::imdiff::ScopedTimer IMDIFF_TRACE_CONCAT(imdiff_trace_timer_, __LINE__)( \
      IMDIFF_TRACE_CONCAT(imdiff_trace_hist_, __LINE__))

#endif  // IMDIFF_UTILS_METRICS_H_
