#include "utils/fault.h"

#include <cstdlib>
#include <utility>

#include "utils/check.h"
#include "utils/rng.h"

namespace imdiff {
namespace {

// Hash → uniform double in [0, 1), same construction std::generate_canonical
// effectively uses: the top 53 bits scaled by 2^-53.
double UnitFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

struct ParsedEntry {
  std::string name;
  double probability = 0.0;
  int64_t fire_on_call = 0;
  int64_t max_fires = -1;
};

// Grammar (see fault.h): "name:P", "name:PxM", "name:#N", comma-separated.
std::vector<ParsedEntry> ParseSpec(const std::string& spec) {
  std::vector<ParsedEntry> entries;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const size_t colon = item.find(':');
    IMDIFF_CHECK(colon != std::string::npos && colon > 0)
        << "fault spec entry needs name:trigger, got:" << item;
    ParsedEntry entry;
    entry.name = item.substr(0, colon);
    const std::string trigger = item.substr(colon + 1);
    IMDIFF_CHECK(!trigger.empty()) << "empty fault trigger in:" << item;
    if (trigger[0] == '#') {
      char* parse_end = nullptr;
      entry.fire_on_call = std::strtoll(trigger.c_str() + 1, &parse_end, 10);
      IMDIFF_CHECK(parse_end != nullptr && *parse_end == '\0' &&
                   entry.fire_on_call > 0)
          << "fault count trigger must be #N with N >= 1, got:" << item;
      entry.max_fires = 1;
    } else {
      char* parse_end = nullptr;
      entry.probability = std::strtod(trigger.c_str(), &parse_end);
      IMDIFF_CHECK(parse_end != nullptr && parse_end != trigger.c_str())
          << "fault probability must be a number, got:" << item;
      if (*parse_end == 'x') {
        char* cap_end = nullptr;
        entry.max_fires = std::strtoll(parse_end + 1, &cap_end, 10);
        IMDIFF_CHECK(cap_end != nullptr && *cap_end == '\0' &&
                     entry.max_fires > 0)
            << "fault fire cap must be xM with M >= 1, got:" << item;
      } else {
        IMDIFF_CHECK(*parse_end == '\0') << "trailing garbage in:" << item;
      }
      IMDIFF_CHECK(entry.probability >= 0.0 && entry.probability <= 1.0)
          << "fault probability out of [0,1]:" << item;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

bool FaultPoint::Fire() {
  const int64_t index = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  const int64_t on = fire_on_call_.load(std::memory_order_relaxed);
  bool fire;
  if (on > 0) {
    fire = index == on;
  } else {
    const double p = probability_.load(std::memory_order_relaxed);
    if (p <= 0.0) return false;
    fire = UnitFromHash(MixSeed(seed_.load(std::memory_order_relaxed),
                                static_cast<uint64_t>(index))) < p;
  }
  if (!fire) return false;
  const int64_t cap = max_fires_.load(std::memory_order_relaxed);
  const int64_t already = fired_.fetch_add(1, std::memory_order_relaxed);
  if (cap >= 0 && already >= cap) {
    fired_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool FaultPoint::FireKeyed(uint64_t key) {
  const double p = probability_.load(std::memory_order_relaxed);
  if (p <= 0.0) return false;
  const bool fire =
      UnitFromHash(MixSeed(seed_.load(std::memory_order_relaxed), key)) < p;
  if (fire) fired_.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

void FaultPoint::Arm(double probability, int64_t fire_on_call,
                     int64_t max_fires, uint64_t seed) {
  probability_.store(probability, std::memory_order_relaxed);
  fire_on_call_.store(fire_on_call, std::memory_order_relaxed);
  max_fires_.store(max_fires, std::memory_order_relaxed);
  seed_.store(seed, std::memory_order_relaxed);
  calls_.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
}

void FaultPoint::Disarm() { Arm(0.0, 0, -1, 0); }

FaultRegistry& FaultRegistry::Global() {
  // Leaked singleton: see header.
  static FaultRegistry* const registry = new FaultRegistry();
  return *registry;
}

FaultRegistry::FaultRegistry() {
  const char* seed_env = std::getenv("IMDIFF_FAULTS_SEED");
  if (seed_env != nullptr && *seed_env != '\0') {
    seed_ = std::strtoull(seed_env, nullptr, 10);
  }
  const char* spec_env = std::getenv("IMDIFF_FAULTS");
  if (spec_env != nullptr && *spec_env != '\0') {
    Configure(spec_env, seed_);
  }
}

FaultPoint* FaultRegistry::GetPointLocked(const std::string& name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_
             .emplace(name,
                      std::unique_ptr<FaultPoint>(new FaultPoint()))
             .first;
  }
  return it->second.get();
}

FaultPoint* FaultRegistry::GetPoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetPointLocked(name);
}

void FaultRegistry::Configure(const std::string& spec, uint64_t seed) {
  const std::vector<ParsedEntry> entries = ParseSpec(spec);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) point->Disarm();
  for (const ParsedEntry& entry : entries) {
    // Per-point seed mixed with the point name so two points under the same
    // global seed draw decorrelated schedules.
    GetPointLocked(entry.name)
        ->Arm(entry.probability, entry.fire_on_call, entry.max_fires,
              MixSeed(seed,
                      HashBytes(entry.name.data(), entry.name.size())));
  }
  spec_ = spec;
  seed_ = seed;
  armed_.store(!entries.empty(), std::memory_order_relaxed);
}

std::string FaultRegistry::spec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_;
}

uint64_t FaultRegistry::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

std::map<std::string, int64_t> FaultRegistry::FireCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> counts;
  for (const auto& [name, point] : points_) counts[name] = point->fired();
  return counts;
}

FaultScope::FaultScope(const std::string& spec, uint64_t seed)
    : prev_spec_(FaultRegistry::Global().spec()),
      prev_seed_(FaultRegistry::Global().seed()) {
  FaultRegistry::Global().Configure(spec, seed);
}

FaultScope::~FaultScope() {
  FaultRegistry::Global().Configure(prev_spec_, prev_seed_);
}

std::vector<double> BackoffSchedule(const BackoffPolicy& policy,
                                    uint64_t seed) {
  IMDIFF_CHECK_GE(policy.max_attempts, 1);
  IMDIFF_CHECK_GE(policy.jitter, 0.0);
  IMDIFF_CHECK_LE(policy.jitter, 1.0);
  std::vector<double> delays;
  delays.reserve(static_cast<size_t>(policy.max_attempts - 1));
  Rng rng(seed);
  double base = policy.base_seconds;
  for (int i = 0; i + 1 < policy.max_attempts; ++i) {
    delays.push_back(base * (1.0 - policy.jitter * rng.Uniform()));
    base *= policy.multiplier;
  }
  return delays;
}

}  // namespace imdiff
