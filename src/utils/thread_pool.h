// Fixed-size thread pool with chunked ParallelFor helpers and a process-wide
// compute pool.
//
// The compute pool (ComputePool()) parallelizes the CPU hot path: the matmul /
// convolution / softmax kernels in src/tensor, the per-window reverse-diffusion
// batches in ImDiffusionDetector::Run, and the independent (detector, seed)
// runs in EvaluateManySeeds. Each parallel unit writes a disjoint output slice
// and owns its randomness, so results are bitwise identical for every thread
// count (see DESIGN.md "Threading model").
//
// Exception safety: a task that throws does not terminate the process or leak
// pool bookkeeping; the first exception is captured and rethrown from Wait()
// (for Submit()-ed tasks) or from ParallelFor (for loop bodies). A ParallelFor
// issued from inside a worker thread of the same pool runs inline, so nested
// parallel sections cannot deadlock.

#ifndef IMDIFF_UTILS_THREAD_POOL_H_
#define IMDIFF_UTILS_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace imdiff {

class ThreadPool {
 public:
  // Creates `num_threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  // Enqueues a task for asynchronous execution. If the task throws, the first
  // exception is captured and rethrown from the next Wait().
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has completed, then rethrows the first
  // exception captured from a task (if any) and clears it.
  void Wait();

  // True when called from one of this pool's worker threads. Used by
  // ParallelFor to run nested parallel sections inline instead of
  // deadlocking on a pool whose workers are all blocked in a wait.
  bool InWorkerThread() const;

  size_t num_threads() const { return workers_.size(); }

 private:
  // One queued unit of work. `enqueue` stamps Submit() time when metrics
  // collection is enabled (see utils/metrics.h) so queue wait and task
  // execution latency aggregate into the pool.* instruments.
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueue{};
    bool timed = false;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

// Runs body(i) for i in [0, n) across the pool, blocking until all complete.
// Indices are grouped into chunks of at least `grain` so tiny loops do not
// drown in task overhead. Runs inline (and in index order) when the pool is
// null, has a single thread, the loop fits one chunk, or the caller is itself
// a pool worker. Each call waits on its own countdown latch, so concurrent
// and nested ParallelFor calls on one pool neither deadlock nor over-wait.
// The first exception thrown by `body` is rethrown to the caller.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body, size_t grain = 1);

// Chunked variant: runs body(begin, end) over disjoint subranges covering
// [0, n), each of at least `grain` indices. Prefer this in kernels where the
// per-index dispatch of ParallelFor would dominate the work.
void ParallelForRange(ThreadPool* pool, size_t n, size_t grain,
                      const std::function<void(size_t, size_t)>& body);

// Process-wide compute pool shared by the tensor kernels and the evaluation
// harness. Thread count comes from IMDIFF_NUM_THREADS (default:
// hardware_concurrency). Returns nullptr when the count is 1 — the exact
// serial configuration — so every ParallelFor runs inline.
ThreadPool* ComputePool();

// The compute pool's thread count (1 when the pool is serial/disabled).
size_t ComputeThreads();

// Rebuilds the compute pool with `n` threads (0 = hardware_concurrency,
// 1 = serial). Not thread-safe against concurrent compute-pool users; call
// from a single thread at startup, between runs, or in tests.
void SetComputeThreads(size_t n);

}  // namespace imdiff

#endif  // IMDIFF_UTILS_THREAD_POOL_H_
