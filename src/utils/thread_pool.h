// Fixed-size thread pool with a ParallelFor helper.
//
// Used by the evaluation harness to run independent (detector, dataset, seed)
// combinations concurrently. Each task owns its Rng, so parallel execution
// does not perturb determinism.

#ifndef IMDIFF_UTILS_THREAD_POOL_H_
#define IMDIFF_UTILS_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace imdiff {

class ThreadPool {
 public:
  // Creates `num_threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

// Runs body(i) for i in [0, n) across the pool, blocking until all complete.
// With a null pool the loop runs inline.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body);

}  // namespace imdiff

#endif  // IMDIFF_UTILS_THREAD_POOL_H_
