// Deterministic random number generation.
//
// Every stochastic component in the library receives an explicit Rng (or a
// seed) so that runs are reproducible; there is no global generator.

#ifndef IMDIFF_UTILS_RNG_H_
#define IMDIFF_UTILS_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace imdiff {

// A seeded pseudo-random generator wrapping std::mt19937_64 with convenience
// samplers for the distributions used across the library.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Standard normal scaled to N(mean, stddev^2).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Bernoulli with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Fills `out` with iid N(0,1) floats.
  void FillNormal(std::vector<float>& out);
  // Same over a raw buffer (used by arena-backed tensor storage, which has no
  // std::vector to hand out).
  void FillNormal(float* out, size_t n);

  // Derives an independent child generator; the i-th child of a given seed is
  // stable across runs.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Deterministically combines two 64-bit values into a decorrelated seed
// (splitmix64 finalizer over the sum). Used to derive independent noise
// streams from structured coordinates — e.g. (session seed, stream position)
// in the serving layer — so that a computation seeded this way is a pure
// function of its coordinates, independent of call order or batching.
uint64_t MixSeed(uint64_t a, uint64_t b);

// FNV-1a over a byte string; platform-independent (unlike std::hash), so
// tenant-derived seeds are reproducible everywhere.
uint64_t HashBytes(const void* data, size_t size);

}  // namespace imdiff

#endif  // IMDIFF_UTILS_RNG_H_
