#include "utils/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "utils/check.h"

namespace imdiff {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  return cells;
}

std::vector<std::vector<float>> ReadCsv(const std::string& path,
                                        bool skip_header) {
  std::ifstream in(path);
  IMDIFF_CHECK(in.good()) << "cannot open" << path;
  std::vector<std::vector<float>> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first && skip_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    std::vector<float> row;
    for (const std::string& cell : SplitCsvLine(line)) {
      row.push_back(static_cast<float>(std::atof(cell.c_str())));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<float>>& rows) {
  std::ofstream out(path);
  IMDIFF_CHECK(out.good()) << "cannot write" << path;
  if (!header.empty()) {
    for (size_t i = 0; i < header.size(); ++i) {
      if (i > 0) out << ",";
      out << header[i];
    }
    out << "\n";
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ",";
      out << row[i];
    }
    out << "\n";
  }
}

}  // namespace imdiff
