#include "utils/thread_pool.h"

#include <utility>

namespace imdiff {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([i, &body] { body(i); });
  }
  pool->Wait();
}

}  // namespace imdiff
