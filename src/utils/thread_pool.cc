#include "utils/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>

#include "utils/fault.h"
#include "utils/metrics.h"

namespace imdiff {
namespace {

// Set inside WorkerLoop; lets ParallelFor detect re-entrant calls from a task
// running on this pool and fall back to inline execution.
thread_local ThreadPool* tls_worker_pool = nullptr;

// Registry handles for the pool instrumentation, resolved once. Tasks are
// chunk-granular (at most 4 × threads per ParallelFor), so the two clock
// reads per task are noise next to the chunk's work.
struct PoolMetrics {
  Counter* tasks_executed;
  Histogram* queue_wait_seconds;
  Histogram* task_seconds;
};

const PoolMetrics& GetPoolMetrics() {
  static const PoolMetrics metrics = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return PoolMetrics{registry.GetCounter("pool.tasks_executed"),
                       registry.GetHistogram("pool.queue_wait_seconds"),
                       registry.GetHistogram("pool.task_seconds")};
  }();
  return metrics;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Task entry;
  entry.fn = std::move(task);
  entry.timed = MetricsEnabled();
  if (entry.timed) entry.enqueue = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(entry));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return in_flight_ == 0; });
    std::swap(error, first_error_);
  }
  if (error) std::rethrow_exception(error);
}

bool ThreadPool::InWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::chrono::steady_clock::time_point start;
    if (task.timed) {
      start = std::chrono::steady_clock::now();
      GetPoolMetrics().queue_wait_seconds->Record(
          std::chrono::duration<double>(start - task.enqueue).count());
    }
    // Injected scheduling jitter: a fired "pool.slow_task" point stalls this
    // task, modeling a straggler worker (page fault, CPU steal). Purely a
    // latency fault — task results and ordering guarantees are unchanged.
    if (IMDIFF_FAULT("pool.slow_task")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    if (task.timed) {
      GetPoolMetrics().task_seconds->Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
      GetPoolMetrics().tasks_executed->Increment();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

namespace {

// Per-ParallelFor countdown latch. Each call owns one, so concurrent calls on
// the same pool wait only for their own chunks (a global in-flight counter
// would make caller A block on caller B's tasks), and body exceptions are
// routed to the issuing caller rather than to whoever calls Pool::Wait next.
struct LatchState {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining;
  std::exception_ptr error;

  explicit LatchState(size_t n) : remaining(n) {}

  void Finish(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (e && !error) error = e;
    if (--remaining == 0) cv.notify_all();
  }

  void WaitAndRethrow() {
    std::exception_ptr e;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return remaining == 0; });
      e = error;
    }
    if (e) std::rethrow_exception(e);
  }
};

}  // namespace

void ParallelForRange(ThreadPool* pool, size_t n, size_t grain,
                      const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (pool == nullptr || pool->num_threads() <= 1 || n <= grain ||
      pool->InWorkerThread()) {
    body(0, n);
    return;
  }
  // Cap the chunk count at a small multiple of the thread count: enough
  // slack for load balancing without per-index submission overhead.
  const size_t max_chunks = pool->num_threads() * 4;
  const size_t chunk =
      std::max(grain, (n + max_chunks - 1) / max_chunks);
  const size_t num_chunks = (n + chunk - 1) / chunk;
  auto state = std::make_shared<LatchState>(num_chunks);
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    pool->Submit([state, begin, end, &body] {
      std::exception_ptr error;
      try {
        body(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      state->Finish(error);
    });
  }
  state->WaitAndRethrow();
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body, size_t grain) {
  ParallelForRange(pool, n, grain, [&body](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

namespace {

std::mutex compute_pool_mu;
std::unique_ptr<ThreadPool> compute_pool;
bool compute_pool_init = false;

size_t DefaultComputeThreads() {
  if (const char* env = std::getenv("IMDIFF_NUM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  const size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

// A 1-thread configuration keeps the pool null: ParallelFor(nullptr, ...)
// runs inline, giving exact serial execution with zero idle worker threads.
void RebuildComputePoolLocked(size_t n) {
  compute_pool.reset();
  if (n > 1) compute_pool = std::make_unique<ThreadPool>(n);
  compute_pool_init = true;
}

}  // namespace

ThreadPool* ComputePool() {
  std::lock_guard<std::mutex> lock(compute_pool_mu);
  if (!compute_pool_init) RebuildComputePoolLocked(DefaultComputeThreads());
  return compute_pool.get();
}

size_t ComputeThreads() {
  std::lock_guard<std::mutex> lock(compute_pool_mu);
  if (!compute_pool_init) RebuildComputePoolLocked(DefaultComputeThreads());
  return compute_pool ? compute_pool->num_threads() : 1;
}

void SetComputeThreads(size_t n) {
  std::lock_guard<std::mutex> lock(compute_pool_mu);
  RebuildComputePoolLocked(n == 0 ? DefaultComputeThreads() : n);
}

}  // namespace imdiff
