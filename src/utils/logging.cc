#include "utils/logging.h"

#include <atomic>
#include <cstdio>

namespace imdiff {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_min_level.load()) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
}

}  // namespace internal_log
}  // namespace imdiff
