// Precondition-checking macros.
//
// The library does not use exceptions (Google style). Programmer errors —
// shape mismatches, out-of-range indices, invalid configuration — abort the
// process with a message identifying the failing condition and location.

#ifndef IMDIFF_UTILS_CHECK_H_
#define IMDIFF_UTILS_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace imdiff {
namespace internal_check {

// Collects a streamed message and aborts in the destructor. Used only via the
// IMDIFF_CHECK family below.
class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: " << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace imdiff

// Aborts with a diagnostic when `condition` is false. Additional context may
// be streamed: IMDIFF_CHECK(a == b) << "a=" << a;
#define IMDIFF_CHECK(condition)                                       \
  if (condition) {                                                    \
  } else /* NOLINT */                                                 \
    ::imdiff::internal_check::CheckFailure(#condition, __FILE__, __LINE__)

#define IMDIFF_CHECK_EQ(a, b) IMDIFF_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define IMDIFF_CHECK_NE(a, b) IMDIFF_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define IMDIFF_CHECK_LT(a, b) IMDIFF_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define IMDIFF_CHECK_LE(a, b) IMDIFF_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define IMDIFF_CHECK_GT(a, b) IMDIFF_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define IMDIFF_CHECK_GE(a, b) IMDIFF_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#endif  // IMDIFF_UTILS_CHECK_H_
