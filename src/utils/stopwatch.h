// Wall-clock stopwatch for throughput reporting.

#ifndef IMDIFF_UTILS_STOPWATCH_H_
#define IMDIFF_UTILS_STOPWATCH_H_

#include <chrono>

namespace imdiff {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace imdiff

#endif  // IMDIFF_UTILS_STOPWATCH_H_
