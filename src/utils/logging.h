// Minimal leveled logging to stderr.

#ifndef IMDIFF_UTILS_LOGGING_H_
#define IMDIFF_UTILS_LOGGING_H_

#include <sstream>
#include <string>

namespace imdiff {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the minimum level emitted; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace imdiff

#define IMDIFF_LOG(level)                                                  \
  ::imdiff::internal_log::LogMessage(::imdiff::LogLevel::k##level, __FILE__, \
                                     __LINE__)

#endif  // IMDIFF_UTILS_LOGGING_H_
