#include "utils/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace imdiff {
namespace {

std::atomic<bool> g_metrics_enabled{true};

// Smallest resolvable latency: 1µs. Each bucket doubles the bound.
constexpr double kFirstBound = 1e-6;

int BucketIndex(double seconds) {
  if (!(seconds > kFirstBound)) return 0;
  const int b =
      static_cast<int>(std::ceil(std::log2(seconds / kFirstBound)));
  return b >= Histogram::kNumBuckets ? Histogram::kNumBuckets - 1 : b;
}

// fetch_add for atomic<double> via CAS (C++20 float fetch_add is not
// universally available).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

// Shortest %g form that round-trips typical latencies; never emits the
// locale-dependent decimal comma.
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

double Histogram::BucketBound(int b) {
  if (b >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kFirstBound * std::pow(2.0, b);
}

void Histogram::Record(double seconds) {
  buckets_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, seconds);
  AtomicMin(min_, seconds);
  AtomicMax(max_, seconds);
}

double Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::mean() const {
  const int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::Percentile(double q) const {
  const int64_t n = count();
  if (n <= 0) return 0.0;
  // q=0 means "the smallest observation" exactly, not the (coarser) bound of
  // whichever bucket that observation landed in.
  if (q <= 0.0) return min();
  if (q > 1.0) q = 1.0;
  // Rank is at least 1 so an empty bucket 0 can never satisfy the scan.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(n))));
  int64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += bucket_count(b);
    if (cumulative >= rank) {
      // Cap the unbounded tail bucket (and coarse upper buckets) at the
      // observed maximum, and clamp from below by the observed minimum so a
      // coarse-bucket estimate never undercuts the smallest recorded sample.
      return std::max(min(), std::min(BucketBound(b), max()));
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::string MetricsToJson() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  std::lock_guard<std::mutex> lock(registry.mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : registry.counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : registry.gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << FormatDouble(g->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : registry.histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name) << "\": {"
        << "\"count\": " << h->count() << ", \"sum\": "
        << FormatDouble(h->sum()) << ", \"min\": " << FormatDouble(h->min())
        << ", \"max\": " << FormatDouble(h->max())
        << ", \"mean\": " << FormatDouble(h->mean())
        << ", \"p50\": " << FormatDouble(h->Percentile(0.5))
        << ", \"p90\": " << FormatDouble(h->Percentile(0.9))
        << ", \"p99\": " << FormatDouble(h->Percentile(0.99))
        << ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const int64_t n = h->bucket_count(b);
      if (n == 0) continue;
      const double bound = Histogram::BucketBound(b);
      out << (first_bucket ? "" : ", ") << "{\"le\": "
          << (std::isfinite(bound) ? FormatDouble(bound) : "\"inf\"")
          << ", \"count\": " << n << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

bool WriteMetricsJson(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << MetricsToJson();
  out.flush();
  return out.good();
}

bool ProbeWritable(const std::string& path) {
  const bool existed = [&] {
    std::ifstream probe(path);
    return probe.good();
  }();
  {
    std::ofstream out(path, std::ios::app);
    if (!out.good()) return false;
  }
  if (!existed) std::remove(path.c_str());
  return true;
}

int64_t ProcessPeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<int64_t>(usage.ru_maxrss);  // kilobytes on Linux
#endif
#else
  return -1;
#endif
}

}  // namespace imdiff
