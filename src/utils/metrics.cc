#include "utils/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace imdiff {
namespace {

std::atomic<bool> g_metrics_enabled{true};

// Smallest resolvable latency: 1µs. Each bucket doubles the bound.
constexpr double kFirstBound = 1e-6;

int BucketIndex(double seconds) {
  if (!(seconds > kFirstBound)) return 0;
  const int b =
      static_cast<int>(std::ceil(std::log2(seconds / kFirstBound)));
  return b >= Histogram::kNumBuckets ? Histogram::kNumBuckets - 1 : b;
}

// fetch_add for atomic<double> via CAS (C++20 float fetch_add is not
// universally available).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

// Shortest %g form that round-trips typical latencies; never emits the
// locale-dependent decimal comma.
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

double Histogram::BucketBound(int b) {
  if (b >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kFirstBound * std::pow(2.0, b);
}

void Histogram::Record(double seconds) {
  buckets_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, seconds);
  AtomicMin(min_, seconds);
  AtomicMax(max_, seconds);
}

double Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::mean() const {
  const int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::Percentile(double q) const {
  const int64_t n = count();
  if (n <= 0) return 0.0;
  // q=0 means "the smallest observation" exactly, not the (coarser) bound of
  // whichever bucket that observation landed in.
  if (q <= 0.0) return min();
  if (q > 1.0) q = 1.0;
  // Rank is at least 1 so an empty bucket 0 can never satisfy the scan.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(n))));
  int64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += bucket_count(b);
    if (cumulative >= rank) {
      // Cap the unbounded tail bucket (and coarse upper buckets) at the
      // observed maximum, and clamp from below by the observed minimum so a
      // coarse-bucket estimate never undercuts the smallest recorded sample.
      return std::max(min(), std::min(BucketBound(b), max()));
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::string MetricsToJson() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  std::lock_guard<std::mutex> lock(registry.mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : registry.counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : registry.gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << FormatDouble(g->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : registry.histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name) << "\": {"
        << "\"count\": " << h->count() << ", \"sum\": "
        << FormatDouble(h->sum()) << ", \"min\": " << FormatDouble(h->min())
        << ", \"max\": " << FormatDouble(h->max())
        << ", \"mean\": " << FormatDouble(h->mean())
        << ", \"p50\": " << FormatDouble(h->Percentile(0.5))
        << ", \"p90\": " << FormatDouble(h->Percentile(0.9))
        << ", \"p99\": " << FormatDouble(h->Percentile(0.99))
        << ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const int64_t n = h->bucket_count(b);
      if (n == 0) continue;
      const double bound = Histogram::BucketBound(b);
      out << (first_bucket ? "" : ", ") << "{\"le\": "
          << (std::isfinite(bound) ? FormatDouble(bound) : "\"inf\"")
          << ", \"count\": " << n << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

bool WriteMetricsJson(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << MetricsToJson();
  out.flush();
  return out.good();
}

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for MergeMetricsJson. It parses exactly the dialect
// MetricsToJson emits (objects, arrays, strings with the four escapes
// EscapeJson produces, and strtod numbers) and fails soft: any syntax error
// makes Parse return false and the caller skips that snapshot.

struct JsonValue {
  enum class Kind { kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                          // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  // kObject

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const char* begin, const char* end) : p_(begin), end_(end) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipSpace();
    return p_ == end_;
  }

 private:
  void SkipSpace() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) return false;
        const char esc = *p_++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: return false;  // not a sequence EscapeJson emits
        }
      }
      out->push_back(c);
    }
    return p_ != end_ && *p_++ == '"';
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (p_ == end_) return false;
    if (*p_ == '{') {
      ++p_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (p_ != end_ && *p_ == '}') {
        ++p_;
        return true;
      }
      while (true) {
        std::string key;
        JsonValue value;
        if (!ParseString(&key) || !Consume(':') || !ParseValue(&value)) {
          return false;
        }
        out->fields.emplace_back(std::move(key), std::move(value));
        SkipSpace();
        if (p_ == end_) return false;
        if (*p_ == ',') {
          ++p_;
          continue;
        }
        return *p_++ == '}';
      }
    }
    if (*p_ == '[') {
      ++p_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (p_ != end_ && *p_ == ']') {
        ++p_;
        return true;
      }
      while (true) {
        JsonValue item;
        if (!ParseValue(&item)) return false;
        out->items.push_back(std::move(item));
        SkipSpace();
        if (p_ == end_) return false;
        if (*p_ == ',') {
          ++p_;
          continue;
        }
        return *p_++ == ']';
      }
    }
    if (*p_ == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    char* num_end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(p_, &num_end);
    if (num_end == p_ || num_end > end_) return false;
    p_ = num_end;
    return true;
  }

  const char* p_;
  const char* end_;
};

// One histogram being merged across snapshots. Buckets are keyed by their
// numeric upper bound (+inf for the tail bucket) and remember the exact
// string the source emitted so the merged output round-trips byte-stable.
struct MergedHistogram {
  int64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::map<double, std::pair<std::string, int64_t>> buckets;

  // Histogram::Percentile over the merged buckets: nearest-rank bucket scan
  // with the estimate clamped into the observed [min, max].
  double Percentile(double q) const {
    if (count <= 0) return 0.0;
    if (q <= 0.0) return min;
    if (q > 1.0) q = 1.0;
    const int64_t rank = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count))));
    int64_t cumulative = 0;
    for (const auto& [bound, bucket] : buckets) {
      cumulative += bucket.second;
      if (cumulative >= rank) return std::max(min, std::min(bound, max));
    }
    return max;
  }
};

double NumberField(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number : 0.0;
}

}  // namespace

std::string MergeMetricsJson(const std::vector<std::string>& snapshots) {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, MergedHistogram> histograms;

  for (const std::string& snapshot : snapshots) {
    JsonValue root;
    JsonParser parser(snapshot.data(), snapshot.data() + snapshot.size());
    if (!parser.Parse(&root) || root.kind != JsonValue::Kind::kObject) {
      MetricsRegistry::Global().GetCounter("merge.parse_failures")->Increment();
      continue;
    }
    if (const JsonValue* cs = root.Find("counters")) {
      for (const auto& [name, v] : cs->fields) {
        if (v.kind != JsonValue::Kind::kNumber) continue;
        counters[name] += static_cast<int64_t>(v.number);
      }
    }
    if (const JsonValue* gs = root.Find("gauges")) {
      for (const auto& [name, v] : gs->fields) {
        if (v.kind != JsonValue::Kind::kNumber) continue;
        auto [it, inserted] = gauges.emplace(name, v.number);
        if (!inserted) it->second = std::max(it->second, v.number);
      }
    }
    if (const JsonValue* hs = root.Find("histograms")) {
      for (const auto& [name, v] : hs->fields) {
        if (v.kind != JsonValue::Kind::kObject) continue;
        MergedHistogram& merged = histograms[name];
        const auto count = static_cast<int64_t>(NumberField(v, "count"));
        merged.count += count;
        merged.sum += NumberField(v, "sum");
        if (count > 0) {
          // An empty histogram reports min/max as 0 — placeholders, not
          // observations; folding them in would fake a 0-second sample.
          merged.min = std::min(merged.min, NumberField(v, "min"));
          merged.max = std::max(merged.max, NumberField(v, "max"));
        }
        const JsonValue* buckets = v.Find("buckets");
        if (buckets == nullptr ||
            buckets->kind != JsonValue::Kind::kArray) {
          continue;
        }
        for (const JsonValue& bucket : buckets->items) {
          if (bucket.kind != JsonValue::Kind::kObject) continue;
          const JsonValue* le = bucket.Find("le");
          if (le == nullptr) continue;
          const bool inf = le->kind == JsonValue::Kind::kString;
          const double bound =
              inf ? std::numeric_limits<double>::infinity() : le->number;
          const std::string text =
              inf ? "\"inf\"" : FormatDouble(le->number);
          auto& slot = merged.buckets[bound];
          if (slot.first.empty()) slot.first = text;
          slot.second += static_cast<int64_t>(NumberField(bucket, "count"));
        }
      }
    }
  }

  // Emit in the MetricsToJson layout so downstream consumers (the CI
  // assertion scripts, WriteMetricsJson readers) need no second schema.
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << FormatDouble(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    const double min = h.count > 0 ? h.min : 0.0;
    const double max = h.count > 0 ? h.max : 0.0;
    const double mean =
        h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name) << "\": {"
        << "\"count\": " << h.count << ", \"sum\": " << FormatDouble(h.sum)
        << ", \"min\": " << FormatDouble(min)
        << ", \"max\": " << FormatDouble(max)
        << ", \"mean\": " << FormatDouble(mean)
        << ", \"p50\": " << FormatDouble(h.Percentile(0.5))
        << ", \"p90\": " << FormatDouble(h.Percentile(0.9))
        << ", \"p99\": " << FormatDouble(h.Percentile(0.99))
        << ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [bound, bucket] : h.buckets) {
      if (bucket.second == 0) continue;
      out << (first_bucket ? "" : ", ") << "{\"le\": " << bucket.first
          << ", \"count\": " << bucket.second << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

bool ProbeWritable(const std::string& path) {
  const bool existed = [&] {
    std::ifstream probe(path);
    return probe.good();
  }();
  {
    std::ofstream out(path, std::ios::app);
    if (!out.good()) return false;
  }
  if (!existed) std::remove(path.c_str());
  return true;
}

int64_t ProcessPeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<int64_t>(usage.ru_maxrss);  // kilobytes on Linux
#endif
#else
  return -1;
#endif
}

}  // namespace imdiff
