#include "utils/rng.h"

namespace imdiff {

void Rng::FillNormal(std::vector<float>& out) {
  FillNormal(out.data(), out.size());
}

void Rng::FillNormal(float* out, size_t n) {
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (size_t i = 0; i < n; ++i) out[i] = dist(engine_);
}

Rng Rng::Fork() {
  // Draw a fresh 64-bit seed; mixes so children are decorrelated.
  uint64_t child = engine_() * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  return Rng(child);
}

uint64_t MixSeed(uint64_t a, uint64_t b) {
  // splitmix64 finalizer (Steele et al.) over the golden-ratio-weighted sum.
  uint64_t z = a + 0x9E3779B97F4A7C15ull * (b + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t HashBytes(const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace imdiff
