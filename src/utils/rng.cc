#include "utils/rng.h"

namespace imdiff {

void Rng::FillNormal(std::vector<float>& out) {
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (float& v : out) v = dist(engine_);
}

Rng Rng::Fork() {
  // Draw a fresh 64-bit seed; mixes so children are decorrelated.
  uint64_t child = engine_() * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  return Rng(child);
}

}  // namespace imdiff
