# Empty compiler generated dependencies file for imdiff_tests.
# This may be replaced when dependencies are built.
