file(REMOVE_RECURSE
  "CMakeFiles/imdiff_tests.dir/autograd_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/autograd_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/baselines_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/baselines_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/data_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/data_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/diffusion_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/diffusion_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/eval_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/eval_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/extensions_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/extensions_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/imdiffusion_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/imdiffusion_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/integration_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/layers_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/layers_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/masking_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/masking_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/metrics_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/metrics_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/property_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/property_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/tensor_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/tensor_test.cc.o.d"
  "CMakeFiles/imdiff_tests.dir/utils_test.cc.o"
  "CMakeFiles/imdiff_tests.dir/utils_test.cc.o.d"
  "imdiff_tests"
  "imdiff_tests.pdb"
  "imdiff_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdiff_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
