
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/imdiff_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/imdiff_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/imdiff_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/diffusion_test.cc" "tests/CMakeFiles/imdiff_tests.dir/diffusion_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/diffusion_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/imdiff_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/imdiff_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/imdiffusion_test.cc" "tests/CMakeFiles/imdiff_tests.dir/imdiffusion_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/imdiffusion_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/imdiff_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/layers_test.cc" "tests/CMakeFiles/imdiff_tests.dir/layers_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/layers_test.cc.o.d"
  "/root/repo/tests/masking_test.cc" "tests/CMakeFiles/imdiff_tests.dir/masking_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/masking_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/imdiff_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/imdiff_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/tensor_test.cc" "tests/CMakeFiles/imdiff_tests.dir/tensor_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/tensor_test.cc.o.d"
  "/root/repo/tests/utils_test.cc" "tests/CMakeFiles/imdiff_tests.dir/utils_test.cc.o" "gcc" "tests/CMakeFiles/imdiff_tests.dir/utils_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imdiff_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
