file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_conditional.dir/bench_fig2_conditional.cc.o"
  "CMakeFiles/bench_fig2_conditional.dir/bench_fig2_conditional.cc.o.d"
  "bench_fig2_conditional"
  "bench_fig2_conditional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_conditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
