file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_production.dir/bench_table7_production.cc.o"
  "CMakeFiles/bench_table7_production.dir/bench_table7_production.cc.o.d"
  "bench_table7_production"
  "bench_table7_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
