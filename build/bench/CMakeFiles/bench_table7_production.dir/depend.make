# Empty dependencies file for bench_table7_production.
# This may be replaced when dependencies are built.
