file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_timeliness.dir/bench_table4_timeliness.cc.o"
  "CMakeFiles/bench_table4_timeliness.dir/bench_table4_timeliness.cc.o.d"
  "bench_table4_timeliness"
  "bench_table4_timeliness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_timeliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
