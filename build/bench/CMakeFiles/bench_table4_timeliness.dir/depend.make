# Empty dependencies file for bench_table4_timeliness.
# This may be replaced when dependencies are built.
