# Empty dependencies file for bench_fig9_error_gap.
# This may be replaced when dependencies are built.
