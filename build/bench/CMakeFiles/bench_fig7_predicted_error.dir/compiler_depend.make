# Empty compiler generated dependencies file for bench_fig7_predicted_error.
# This may be replaced when dependencies are built.
