# Empty compiler generated dependencies file for bench_ext_thresholding.
# This may be replaced when dependencies are built.
