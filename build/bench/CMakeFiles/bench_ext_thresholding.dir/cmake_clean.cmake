file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_thresholding.dir/bench_ext_thresholding.cc.o"
  "CMakeFiles/bench_ext_thresholding.dir/bench_ext_thresholding.cc.o.d"
  "bench_ext_thresholding"
  "bench_ext_thresholding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_thresholding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
