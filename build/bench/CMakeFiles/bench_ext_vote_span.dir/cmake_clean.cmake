file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_vote_span.dir/bench_ext_vote_span.cc.o"
  "CMakeFiles/bench_ext_vote_span.dir/bench_ext_vote_span.cc.o.d"
  "bench_ext_vote_span"
  "bench_ext_vote_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_vote_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
