# Empty dependencies file for bench_ext_vote_span.
# This may be replaced when dependencies are built.
