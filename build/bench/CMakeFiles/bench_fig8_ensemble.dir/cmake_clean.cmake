file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ensemble.dir/bench_fig8_ensemble.cc.o"
  "CMakeFiles/bench_fig8_ensemble.dir/bench_fig8_ensemble.cc.o.d"
  "bench_fig8_ensemble"
  "bench_fig8_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
