file(REMOVE_RECURSE
  "libimdiff_eval.a"
)
