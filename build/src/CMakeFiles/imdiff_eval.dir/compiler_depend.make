# Empty compiler generated dependencies file for imdiff_eval.
# This may be replaced when dependencies are built.
