file(REMOVE_RECURSE
  "CMakeFiles/imdiff_eval.dir/eval/runner.cc.o"
  "CMakeFiles/imdiff_eval.dir/eval/runner.cc.o.d"
  "CMakeFiles/imdiff_eval.dir/eval/tables.cc.o"
  "CMakeFiles/imdiff_eval.dir/eval/tables.cc.o.d"
  "libimdiff_eval.a"
  "libimdiff_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdiff_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
