
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/runner.cc" "src/CMakeFiles/imdiff_eval.dir/eval/runner.cc.o" "gcc" "src/CMakeFiles/imdiff_eval.dir/eval/runner.cc.o.d"
  "/root/repo/src/eval/tables.cc" "src/CMakeFiles/imdiff_eval.dir/eval/tables.cc.o" "gcc" "src/CMakeFiles/imdiff_eval.dir/eval/tables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imdiff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
