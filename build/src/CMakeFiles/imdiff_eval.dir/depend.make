# Empty dependencies file for imdiff_eval.
# This may be replaced when dependencies are built.
