file(REMOVE_RECURSE
  "libimdiff_core.a"
)
