# Empty dependencies file for imdiff_core.
# This may be replaced when dependencies are built.
