file(REMOVE_RECURSE
  "CMakeFiles/imdiff_core.dir/core/im_transformer.cc.o"
  "CMakeFiles/imdiff_core.dir/core/im_transformer.cc.o.d"
  "CMakeFiles/imdiff_core.dir/core/imdiffusion.cc.o"
  "CMakeFiles/imdiff_core.dir/core/imdiffusion.cc.o.d"
  "CMakeFiles/imdiff_core.dir/core/masking.cc.o"
  "CMakeFiles/imdiff_core.dir/core/masking.cc.o.d"
  "CMakeFiles/imdiff_core.dir/core/online_detector.cc.o"
  "CMakeFiles/imdiff_core.dir/core/online_detector.cc.o.d"
  "libimdiff_core.a"
  "libimdiff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdiff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
