file(REMOVE_RECURSE
  "libimdiff_diffusion.a"
)
