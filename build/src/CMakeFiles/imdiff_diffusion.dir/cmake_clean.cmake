file(REMOVE_RECURSE
  "CMakeFiles/imdiff_diffusion.dir/diffusion/ddpm.cc.o"
  "CMakeFiles/imdiff_diffusion.dir/diffusion/ddpm.cc.o.d"
  "CMakeFiles/imdiff_diffusion.dir/diffusion/schedule.cc.o"
  "CMakeFiles/imdiff_diffusion.dir/diffusion/schedule.cc.o.d"
  "libimdiff_diffusion.a"
  "libimdiff_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdiff_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
