# Empty dependencies file for imdiff_diffusion.
# This may be replaced when dependencies are built.
