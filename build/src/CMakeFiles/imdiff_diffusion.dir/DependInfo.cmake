
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diffusion/ddpm.cc" "src/CMakeFiles/imdiff_diffusion.dir/diffusion/ddpm.cc.o" "gcc" "src/CMakeFiles/imdiff_diffusion.dir/diffusion/ddpm.cc.o.d"
  "/root/repo/src/diffusion/schedule.cc" "src/CMakeFiles/imdiff_diffusion.dir/diffusion/schedule.cc.o" "gcc" "src/CMakeFiles/imdiff_diffusion.dir/diffusion/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imdiff_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
