
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/beatgan.cc" "src/CMakeFiles/imdiff_baselines.dir/baselines/beatgan.cc.o" "gcc" "src/CMakeFiles/imdiff_baselines.dir/baselines/beatgan.cc.o.d"
  "/root/repo/src/baselines/gdn.cc" "src/CMakeFiles/imdiff_baselines.dir/baselines/gdn.cc.o" "gcc" "src/CMakeFiles/imdiff_baselines.dir/baselines/gdn.cc.o.d"
  "/root/repo/src/baselines/iforest.cc" "src/CMakeFiles/imdiff_baselines.dir/baselines/iforest.cc.o" "gcc" "src/CMakeFiles/imdiff_baselines.dir/baselines/iforest.cc.o.d"
  "/root/repo/src/baselines/interfusion.cc" "src/CMakeFiles/imdiff_baselines.dir/baselines/interfusion.cc.o" "gcc" "src/CMakeFiles/imdiff_baselines.dir/baselines/interfusion.cc.o.d"
  "/root/repo/src/baselines/lstm_ad.cc" "src/CMakeFiles/imdiff_baselines.dir/baselines/lstm_ad.cc.o" "gcc" "src/CMakeFiles/imdiff_baselines.dir/baselines/lstm_ad.cc.o.d"
  "/root/repo/src/baselines/madgan.cc" "src/CMakeFiles/imdiff_baselines.dir/baselines/madgan.cc.o" "gcc" "src/CMakeFiles/imdiff_baselines.dir/baselines/madgan.cc.o.d"
  "/root/repo/src/baselines/mscred.cc" "src/CMakeFiles/imdiff_baselines.dir/baselines/mscred.cc.o" "gcc" "src/CMakeFiles/imdiff_baselines.dir/baselines/mscred.cc.o.d"
  "/root/repo/src/baselines/mtad_gat.cc" "src/CMakeFiles/imdiff_baselines.dir/baselines/mtad_gat.cc.o" "gcc" "src/CMakeFiles/imdiff_baselines.dir/baselines/mtad_gat.cc.o.d"
  "/root/repo/src/baselines/omni_anomaly.cc" "src/CMakeFiles/imdiff_baselines.dir/baselines/omni_anomaly.cc.o" "gcc" "src/CMakeFiles/imdiff_baselines.dir/baselines/omni_anomaly.cc.o.d"
  "/root/repo/src/baselines/tranad.cc" "src/CMakeFiles/imdiff_baselines.dir/baselines/tranad.cc.o" "gcc" "src/CMakeFiles/imdiff_baselines.dir/baselines/tranad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imdiff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
