file(REMOVE_RECURSE
  "libimdiff_baselines.a"
)
