# Empty dependencies file for imdiff_baselines.
# This may be replaced when dependencies are built.
