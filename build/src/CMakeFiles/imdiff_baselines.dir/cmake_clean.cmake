file(REMOVE_RECURSE
  "CMakeFiles/imdiff_baselines.dir/baselines/beatgan.cc.o"
  "CMakeFiles/imdiff_baselines.dir/baselines/beatgan.cc.o.d"
  "CMakeFiles/imdiff_baselines.dir/baselines/gdn.cc.o"
  "CMakeFiles/imdiff_baselines.dir/baselines/gdn.cc.o.d"
  "CMakeFiles/imdiff_baselines.dir/baselines/iforest.cc.o"
  "CMakeFiles/imdiff_baselines.dir/baselines/iforest.cc.o.d"
  "CMakeFiles/imdiff_baselines.dir/baselines/interfusion.cc.o"
  "CMakeFiles/imdiff_baselines.dir/baselines/interfusion.cc.o.d"
  "CMakeFiles/imdiff_baselines.dir/baselines/lstm_ad.cc.o"
  "CMakeFiles/imdiff_baselines.dir/baselines/lstm_ad.cc.o.d"
  "CMakeFiles/imdiff_baselines.dir/baselines/madgan.cc.o"
  "CMakeFiles/imdiff_baselines.dir/baselines/madgan.cc.o.d"
  "CMakeFiles/imdiff_baselines.dir/baselines/mscred.cc.o"
  "CMakeFiles/imdiff_baselines.dir/baselines/mscred.cc.o.d"
  "CMakeFiles/imdiff_baselines.dir/baselines/mtad_gat.cc.o"
  "CMakeFiles/imdiff_baselines.dir/baselines/mtad_gat.cc.o.d"
  "CMakeFiles/imdiff_baselines.dir/baselines/omni_anomaly.cc.o"
  "CMakeFiles/imdiff_baselines.dir/baselines/omni_anomaly.cc.o.d"
  "CMakeFiles/imdiff_baselines.dir/baselines/tranad.cc.o"
  "CMakeFiles/imdiff_baselines.dir/baselines/tranad.cc.o.d"
  "libimdiff_baselines.a"
  "libimdiff_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdiff_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
