
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/add.cc" "src/CMakeFiles/imdiff_metrics.dir/metrics/add.cc.o" "gcc" "src/CMakeFiles/imdiff_metrics.dir/metrics/add.cc.o.d"
  "/root/repo/src/metrics/classification.cc" "src/CMakeFiles/imdiff_metrics.dir/metrics/classification.cc.o" "gcc" "src/CMakeFiles/imdiff_metrics.dir/metrics/classification.cc.o.d"
  "/root/repo/src/metrics/dynamic_threshold.cc" "src/CMakeFiles/imdiff_metrics.dir/metrics/dynamic_threshold.cc.o" "gcc" "src/CMakeFiles/imdiff_metrics.dir/metrics/dynamic_threshold.cc.o.d"
  "/root/repo/src/metrics/pot.cc" "src/CMakeFiles/imdiff_metrics.dir/metrics/pot.cc.o" "gcc" "src/CMakeFiles/imdiff_metrics.dir/metrics/pot.cc.o.d"
  "/root/repo/src/metrics/range_auc.cc" "src/CMakeFiles/imdiff_metrics.dir/metrics/range_auc.cc.o" "gcc" "src/CMakeFiles/imdiff_metrics.dir/metrics/range_auc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imdiff_utils.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
