# Empty dependencies file for imdiff_metrics.
# This may be replaced when dependencies are built.
