file(REMOVE_RECURSE
  "libimdiff_metrics.a"
)
