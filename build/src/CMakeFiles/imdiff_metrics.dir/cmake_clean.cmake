file(REMOVE_RECURSE
  "CMakeFiles/imdiff_metrics.dir/metrics/add.cc.o"
  "CMakeFiles/imdiff_metrics.dir/metrics/add.cc.o.d"
  "CMakeFiles/imdiff_metrics.dir/metrics/classification.cc.o"
  "CMakeFiles/imdiff_metrics.dir/metrics/classification.cc.o.d"
  "CMakeFiles/imdiff_metrics.dir/metrics/dynamic_threshold.cc.o"
  "CMakeFiles/imdiff_metrics.dir/metrics/dynamic_threshold.cc.o.d"
  "CMakeFiles/imdiff_metrics.dir/metrics/pot.cc.o"
  "CMakeFiles/imdiff_metrics.dir/metrics/pot.cc.o.d"
  "CMakeFiles/imdiff_metrics.dir/metrics/range_auc.cc.o"
  "CMakeFiles/imdiff_metrics.dir/metrics/range_auc.cc.o.d"
  "libimdiff_metrics.a"
  "libimdiff_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdiff_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
