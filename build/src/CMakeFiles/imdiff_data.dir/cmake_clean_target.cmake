file(REMOVE_RECURSE
  "libimdiff_data.a"
)
