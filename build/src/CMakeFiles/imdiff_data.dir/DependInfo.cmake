
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/benchmarks.cc" "src/CMakeFiles/imdiff_data.dir/data/benchmarks.cc.o" "gcc" "src/CMakeFiles/imdiff_data.dir/data/benchmarks.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/imdiff_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/imdiff_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/imdiff_data.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/imdiff_data.dir/data/synthetic.cc.o.d"
  "/root/repo/src/data/windowing.cc" "src/CMakeFiles/imdiff_data.dir/data/windowing.cc.o" "gcc" "src/CMakeFiles/imdiff_data.dir/data/windowing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imdiff_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imdiff_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
