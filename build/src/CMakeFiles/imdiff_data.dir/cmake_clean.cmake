file(REMOVE_RECURSE
  "CMakeFiles/imdiff_data.dir/data/benchmarks.cc.o"
  "CMakeFiles/imdiff_data.dir/data/benchmarks.cc.o.d"
  "CMakeFiles/imdiff_data.dir/data/dataset.cc.o"
  "CMakeFiles/imdiff_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/imdiff_data.dir/data/synthetic.cc.o"
  "CMakeFiles/imdiff_data.dir/data/synthetic.cc.o.d"
  "CMakeFiles/imdiff_data.dir/data/windowing.cc.o"
  "CMakeFiles/imdiff_data.dir/data/windowing.cc.o.d"
  "libimdiff_data.a"
  "libimdiff_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdiff_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
