# Empty compiler generated dependencies file for imdiff_data.
# This may be replaced when dependencies are built.
