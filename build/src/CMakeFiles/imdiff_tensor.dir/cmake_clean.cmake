file(REMOVE_RECURSE
  "CMakeFiles/imdiff_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/imdiff_tensor.dir/tensor/tensor.cc.o.d"
  "CMakeFiles/imdiff_tensor.dir/tensor/tensor_ops.cc.o"
  "CMakeFiles/imdiff_tensor.dir/tensor/tensor_ops.cc.o.d"
  "libimdiff_tensor.a"
  "libimdiff_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdiff_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
