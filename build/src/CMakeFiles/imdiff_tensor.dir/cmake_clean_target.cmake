file(REMOVE_RECURSE
  "libimdiff_tensor.a"
)
