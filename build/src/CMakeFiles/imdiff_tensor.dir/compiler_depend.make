# Empty compiler generated dependencies file for imdiff_tensor.
# This may be replaced when dependencies are built.
