# Empty compiler generated dependencies file for imdiff_utils.
# This may be replaced when dependencies are built.
