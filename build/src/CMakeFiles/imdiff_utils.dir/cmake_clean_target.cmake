file(REMOVE_RECURSE
  "libimdiff_utils.a"
)
