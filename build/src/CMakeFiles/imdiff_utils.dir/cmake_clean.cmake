file(REMOVE_RECURSE
  "CMakeFiles/imdiff_utils.dir/utils/csv.cc.o"
  "CMakeFiles/imdiff_utils.dir/utils/csv.cc.o.d"
  "CMakeFiles/imdiff_utils.dir/utils/logging.cc.o"
  "CMakeFiles/imdiff_utils.dir/utils/logging.cc.o.d"
  "CMakeFiles/imdiff_utils.dir/utils/rng.cc.o"
  "CMakeFiles/imdiff_utils.dir/utils/rng.cc.o.d"
  "CMakeFiles/imdiff_utils.dir/utils/thread_pool.cc.o"
  "CMakeFiles/imdiff_utils.dir/utils/thread_pool.cc.o.d"
  "libimdiff_utils.a"
  "libimdiff_utils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdiff_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
