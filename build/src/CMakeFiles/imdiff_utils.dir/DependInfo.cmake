
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/utils/csv.cc" "src/CMakeFiles/imdiff_utils.dir/utils/csv.cc.o" "gcc" "src/CMakeFiles/imdiff_utils.dir/utils/csv.cc.o.d"
  "/root/repo/src/utils/logging.cc" "src/CMakeFiles/imdiff_utils.dir/utils/logging.cc.o" "gcc" "src/CMakeFiles/imdiff_utils.dir/utils/logging.cc.o.d"
  "/root/repo/src/utils/rng.cc" "src/CMakeFiles/imdiff_utils.dir/utils/rng.cc.o" "gcc" "src/CMakeFiles/imdiff_utils.dir/utils/rng.cc.o.d"
  "/root/repo/src/utils/thread_pool.cc" "src/CMakeFiles/imdiff_utils.dir/utils/thread_pool.cc.o" "gcc" "src/CMakeFiles/imdiff_utils.dir/utils/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
