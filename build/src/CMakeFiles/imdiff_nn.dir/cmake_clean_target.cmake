file(REMOVE_RECURSE
  "libimdiff_nn.a"
)
