file(REMOVE_RECURSE
  "CMakeFiles/imdiff_nn.dir/nn/attention.cc.o"
  "CMakeFiles/imdiff_nn.dir/nn/attention.cc.o.d"
  "CMakeFiles/imdiff_nn.dir/nn/autograd.cc.o"
  "CMakeFiles/imdiff_nn.dir/nn/autograd.cc.o.d"
  "CMakeFiles/imdiff_nn.dir/nn/layers.cc.o"
  "CMakeFiles/imdiff_nn.dir/nn/layers.cc.o.d"
  "CMakeFiles/imdiff_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/imdiff_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/imdiff_nn.dir/nn/rnn.cc.o"
  "CMakeFiles/imdiff_nn.dir/nn/rnn.cc.o.d"
  "CMakeFiles/imdiff_nn.dir/nn/serialize.cc.o"
  "CMakeFiles/imdiff_nn.dir/nn/serialize.cc.o.d"
  "libimdiff_nn.a"
  "libimdiff_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdiff_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
