# Empty dependencies file for imdiff_nn.
# This may be replaced when dependencies are built.
