# Empty dependencies file for microservice_latency.
# This may be replaced when dependencies are built.
