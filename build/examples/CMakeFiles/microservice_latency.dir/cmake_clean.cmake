file(REMOVE_RECURSE
  "CMakeFiles/microservice_latency.dir/microservice_latency.cc.o"
  "CMakeFiles/microservice_latency.dir/microservice_latency.cc.o.d"
  "microservice_latency"
  "microservice_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microservice_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
