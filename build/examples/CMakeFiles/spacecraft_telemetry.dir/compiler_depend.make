# Empty compiler generated dependencies file for spacecraft_telemetry.
# This may be replaced when dependencies are built.
