file(REMOVE_RECURSE
  "CMakeFiles/spacecraft_telemetry.dir/spacecraft_telemetry.cc.o"
  "CMakeFiles/spacecraft_telemetry.dir/spacecraft_telemetry.cc.o.d"
  "spacecraft_telemetry"
  "spacecraft_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spacecraft_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
